#include "proto/refresh.h"

#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "proto/collector.h"
#include "runtime/trial_runner.h"
#include "util/check.h"
#include "util/stats.h"

namespace prlc::proto {

RefreshResult refresh(Predistribution& dist, net::NodeId maintainer, Rng& rng) {
  net::Overlay& overlay = dist.overlay();
  PRLC_REQUIRE(maintainer < overlay.nodes() && overlay.alive(maintainer),
               "maintainer must be an alive node");

  RefreshResult result;
  obs::ScopedSpan span("refresh", "refresh");

  // 1. Decode everything the surviving blocks determine.
  codes::PriorityDecoder<Field> decoder(dist.params().scheme, dist.spec(),
                                        dist.params().block_size);
  collect(dist, decoder, {}, rng);
  result.decoded_levels = decoder.decoded_levels();
  result.decoded_blocks = decoder.decoded_prefix_blocks();

  // 2. Rebuild repairable lost locations from the recovered payloads.
  const auto& spec = dist.spec();
  for (net::LocationId loc : dist.lost_locations()) {
    ++result.lost_locations;
    const std::size_t level = dist.level_of_location(loc);

    // Support of this location's coded block under the scheme.
    std::size_t begin = 0;
    std::size_t end = spec.total();
    if (dist.params().scheme == codes::Scheme::kSlc) {
      begin = spec.level_begin(level);
      end = spec.level_end(level);
    } else if (dist.params().scheme == codes::Scheme::kPlc) {
      end = spec.level_end(level);
    }
    // Repairable only when every supported source block is decoded. For
    // SLC that means the whole level; for PLC/RLC the prefix covers it.
    bool repairable = true;
    for (std::size_t j = begin; j < end && repairable; ++j) {
      repairable = decoder.is_block_decoded(j);
    }
    if (!repairable) {
      ++result.unrecoverable;
      continue;
    }

    // Fresh random combination over the support — identically distributed
    // to an original dense coded block.
    codes::CodedBlock<Field> block;
    block.level = level;
    block.coeffs.assign(spec.total(), 0);
    block.payload.assign(dist.params().block_size, 0);
    bool any = false;
    for (std::size_t j = begin; j < end; ++j) {
      const auto beta = static_cast<Field::Symbol>(rng.uniform(Field::order()));
      if (beta == 0) continue;
      any = true;
      block.coeffs[j] = beta;
      Field::axpy(std::span<Field::Symbol>(block.payload), beta, decoder.recovered(j));
    }
    if (!any) {
      // All-zero draw (possible only for width-1 supports): force one.
      const auto beta = static_cast<Field::Symbol>(1 + rng.uniform(Field::order() - 1));
      block.coeffs[begin] = beta;
      Field::axpy(std::span<Field::Symbol>(block.payload), beta, decoder.recovered(begin));
    }

    // Ship it from the maintainer to the location's current owner.
    const auto route = overlay.route(maintainer, loc);
    ++result.messages;
    if (!route.delivered) continue;  // partitioned; stays lost this round
    result.total_hops += route.hops;
    dist.store_rebuilt(loc, std::move(block));
    ++result.rebuilt_locations;
  }

  static obs::Counter& rounds = obs::counter("refresh.rounds");
  static obs::Counter& rebuilt = obs::counter("refresh.rebuilt_locations");
  static obs::Counter& unrecoverable = obs::counter("refresh.unrecoverable");
  static obs::Counter& repair_messages = obs::counter("refresh.repair_messages");
  static obs::Counter& repair_hops = obs::counter("refresh.repair_hops");
  rounds.add();
  rebuilt.add(result.rebuilt_locations);
  unrecoverable.add(result.unrecoverable);
  repair_messages.add(result.messages);
  repair_hops.add(result.total_hops);
  obs::emit(obs::EventType::kRefreshRound, static_cast<double>(result.rebuilt_locations),
            static_cast<double>(result.unrecoverable),
            static_cast<double>(result.lost_locations));
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().instant(
        "refresh_done", "refresh",
        {{"lost", static_cast<double>(result.lost_locations)},
         {"rebuilt", static_cast<double>(result.rebuilt_locations)},
         {"unrecoverable", static_cast<double>(result.unrecoverable)}});
  }
  return result;
}

namespace {

/// Per-trial wave series, fixed-size so trials merge slot-by-slot in
/// trial order after the parallel section.
struct RefreshTrialOutcome {
  std::vector<double> levels;
  std::vector<double> blocks;
  std::vector<double> surviving;
  std::vector<double> rebuilt;
};

}  // namespace

std::vector<RefreshWavePoint> run_refresh_experiment(const RefreshExperimentParams& params) {
  params.experiment.validate();
  PRLC_REQUIRE(params.waves > 0, "need at least one churn wave");
  PRLC_REQUIRE(params.kill_fraction > 0 && params.kill_fraction < 1,
               "kill fraction must be in (0, 1)");

  const codes::PrioritySpec spec = params.experiment.spec();
  const codes::PriorityDistribution dist = params.experiment.distribution();
  ProtocolParams proto = params.protocol;
  proto.scheme = params.experiment.scheme;

  // Per-wave health series; logical time is the churn-wave index.
  struct SeriesIds {
    obs::SeriesId decoded_levels;
    obs::SeriesId surviving;
    obs::SeriesId rebuilt;
  };
  SeriesIds ts{};
  const bool want_timeseries = obs::timeseries_enabled();
  if (want_timeseries) {
    ts.decoded_levels = obs::timeseries("refresh.decoded_levels");
    ts.surviving = obs::timeseries("refresh.surviving_locations");
    ts.rebuilt = obs::timeseries("refresh.rebuilt_locations");
  }

  runtime::TrialRunner runner(params.experiment.threads);
  const auto outcomes = runner.run(
      params.experiment.trials, params.experiment.root_seed,
      [&](std::size_t, Rng& rng) {
        net::ChordParams np;
        np.nodes = params.nodes;
        np.locations = params.locations;
        np.seed = rng();
        net::ChordNetwork overlay(np);
        Predistribution pd(overlay, spec, dist, proto);
        const auto source =
            codes::SourceData<Field>::random(spec.total(), proto.block_size, rng);
        pd.disseminate(source, rng);

        RefreshTrialOutcome outcome;
        outcome.levels.reserve(params.waves);
        outcome.blocks.reserve(params.waves);
        outcome.surviving.reserve(params.waves);
        outcome.rebuilt.reserve(params.waves);
        for (std::size_t wave = 0; wave < params.waves; ++wave) {
          obs::set_logical_time(wave);
          net::kill_uniform_fraction(overlay, params.kill_fraction, rng);
          std::size_t rebuilt = 0;
          if (params.use_refresh && overlay.alive_count() > 0) {
            rebuilt = refresh(pd, overlay.random_alive_node(rng), rng).rebuilt_locations;
          }
          codes::PriorityDecoder<Field> dec(proto.scheme, spec, proto.block_size);
          const auto result = collect(pd, dec, {}, rng).result;
          if (want_timeseries) {
            obs::sample(ts.decoded_levels, static_cast<double>(result.decoded_levels));
            obs::sample(ts.surviving, static_cast<double>(result.surviving_locations));
            obs::sample(ts.rebuilt, static_cast<double>(rebuilt));
          }
          outcome.levels.push_back(static_cast<double>(result.decoded_levels));
          outcome.blocks.push_back(static_cast<double>(result.decoded_blocks));
          outcome.surviving.push_back(static_cast<double>(result.surviving_locations));
          outcome.rebuilt.push_back(static_cast<double>(rebuilt));
        }
        return outcome;
      });

  // Ordered merge — see runtime/trial_runner.h for why this is not done
  // with per-thread accumulators.
  std::vector<RunningStats> levels(params.waves);
  std::vector<RunningStats> blocks(params.waves);
  std::vector<RunningStats> surviving(params.waves);
  std::vector<RunningStats> rebuilt(params.waves);
  for (const RefreshTrialOutcome& outcome : outcomes) {
    for (std::size_t wave = 0; wave < params.waves; ++wave) {
      levels[wave].add(outcome.levels[wave]);
      blocks[wave].add(outcome.blocks[wave]);
      surviving[wave].add(outcome.surviving[wave]);
      rebuilt[wave].add(outcome.rebuilt[wave]);
    }
  }

  std::vector<RefreshWavePoint> out(params.waves);
  for (std::size_t wave = 0; wave < params.waves; ++wave) {
    out[wave].wave = wave + 1;
    out[wave].mean_decoded_levels = levels[wave].mean();
    out[wave].ci95_decoded_levels = levels[wave].ci95_halfwidth();
    out[wave].mean_decoded_blocks = blocks[wave].mean();
    out[wave].mean_surviving_locations = surviving[wave].mean();
    out[wave].mean_rebuilt_locations = rebuilt[wave].mean();
  }
  return out;
}

}  // namespace prlc::proto
