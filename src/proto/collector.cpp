#include "proto/collector.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "codes/wire_format.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace prlc::proto {

namespace {

void validate_options(const CollectorOptions& options, const codes::PrioritySpec& spec) {
  PRLC_REQUIRE(!options.max_blocks.has_value() || *options.max_blocks > 0,
               "max_blocks must be positive when set (use nullopt for unlimited)");
  PRLC_REQUIRE(!options.target_levels.has_value() || *options.target_levels <= spec.levels(),
               "target_levels exceeds the spec's level count");
  PRLC_REQUIRE(options.manifest == nullptr ||
                   options.manifest->fingerprints.size() == spec.total(),
               "fingerprint manifest must cover exactly the spec's source blocks");
  options.retry.validate();
}

/// What deliver() decided about one delivered frame.
enum class Delivery {
  kOk,                  ///< parsed, verified, fed to the decoder
  kWireRejected,        ///< CRC/bounds rejection — retryable elsewhere
  kIntegrityRejected,   ///< fingerprint mismatch — block written off, node quarantined
};

/// Backoff before retry `attempt` (0-based), jittered deterministically
/// from the trial Rng. Only called on the retry path, so fault-free
/// collection consumes no extra draws.
std::uint64_t backoff_us(const RetryPolicy& policy, std::size_t attempt, Rng& rng) {
  double delay = static_cast<double>(policy.base_backoff_us) *
                 std::pow(policy.backoff_multiplier, static_cast<double>(attempt));
  delay = std::min(delay, static_cast<double>(policy.max_backoff_us));
  if (policy.jitter > 0) {
    delay *= 1.0 + policy.jitter * (2.0 * rng.uniform_double() - 1.0);
  }
  return static_cast<std::uint64_t>(delay);
}

}  // namespace

void RetryPolicy::validate() const {
  PRLC_REQUIRE(max_attempts >= 1, "need at least one fetch attempt per block");
  PRLC_REQUIRE(backoff_multiplier >= 1.0, "backoff multiplier must be >= 1");
  PRLC_REQUIRE(jitter >= 0.0 && jitter < 1.0, "backoff jitter must be in [0,1)");
  PRLC_REQUIRE(node_fault_budget >= 1, "node fault budget must be >= 1");
}

CollectionOutcome collect(FaultyChannel& channel, codes::PriorityDecoder<Field>& decoder,
                          const CollectorOptions& options, Rng& rng) {
  const bool trace = options.trace;
  const Predistribution& dist = channel.dist();
  PRLC_REQUIRE(decoder.scheme() == dist.params().scheme,
               "decoder scheme must match the predistribution");
  PRLC_REQUIRE(decoder.spec() == dist.spec(), "decoder spec must match the predistribution");
  validate_options(options, dist.spec());
  const RetryPolicy& policy = options.retry;

  static obs::Counter& retries_ctr = obs::counter("collector.retries");
  static obs::Counter& corrupt_ctr = obs::counter("collector.corrupt_blocks");
  static obs::Counter& integrity_ctr = obs::counter("collector.integrity_violations");
  static obs::Counter& quarantine_ctr = obs::counter("collector.quarantined_nodes");
  static obs::Counter& hedges_ctr = obs::counter("collector.hedges");
  static obs::Counter& timeouts_ctr = obs::counter("collector.timeouts");
  static obs::Counter& transient_ctr = obs::counter("collector.transient_errors");
  static obs::Counter& crashes_ctr = obs::counter("collector.node_crashes");
  static obs::Counter& lost_ctr = obs::counter("collector.blocks_lost");
  static obs::Counter& blacklist_ctr = obs::counter("collector.blacklisted_nodes");
  static obs::LatencyHistogram& latency_hist = obs::histogram("collector.fetch_latency_us");

  CollectionOutcome out;
  CollectionResult& result = out.result;

  std::vector<net::LocationId> order = channel.retrievable_locations();
  result.surviving_locations = order.size();
  rng.shuffle(std::span<net::LocationId>(order));

  std::unordered_map<net::NodeId, std::size_t> node_faults;
  std::unordered_set<net::NodeId> blacklisted;
  /// Attempts already spent per location, persisted across deferrals —
  /// a wire-rejected location re-enters the queue instead of retrying
  /// in place, but its max_attempts cap still holds.
  std::unordered_map<net::LocationId, std::size_t> loc_attempts;
  std::size_t cursor = 0;

  // One fingerprinter per collection (the byte-sliced tables are built
  // from the manifest's seed); absent manifest, zero integrity overhead.
  std::optional<util::Fingerprinter> fingerprinter;
  if (options.manifest != nullptr) fingerprinter.emplace(options.manifest->seed);

  /// Remove a node that served a frame contradicting the manifest. Uses
  /// the same blacklist the fault budget feeds, so the main loop skips
  /// its remaining blocks, but is counted separately.
  const auto quarantine = [&](net::NodeId node) {
    if (blacklisted.insert(node).second) {
      ++out.quarantined_nodes;
      quarantine_ctr.add();
      obs::emit(obs::EventType::kNodeQuarantined, static_cast<double>(node));
    }
  };

  const auto done = [&] {
    if (options.max_blocks.has_value() && result.blocks_retrieved >= *options.max_blocks) {
      return true;
    }
    if (options.target_levels.has_value() &&
        decoder.decoded_levels() >= *options.target_levels) {
      result.target_met = true;
      return true;
    }
    return false;
  };

  /// Parse + feed one delivered frame; false (and a corrupt count) when
  /// the wire layer rejects it or it does not belong to this collection.
  /// The zero-copy view path hands the decoder spans straight into the
  /// reply buffer — no per-fetch payload copy; only sparse coefficient
  /// frames expand into a scratch vector reused across fetches.
  std::vector<std::uint8_t> coeff_scratch;
  const auto deliver = [&](net::LocationId loc, const FetchReply& reply) {
    try {
      const codes::WireBlockView view = codes::decode_wire_view(reply.bytes);
      if (view.scheme != decoder.scheme() || view.coeff_width != decoder.spec().total()) {
        throw codes::WireFormatError("frame does not match this collection");
      }
      std::span<const std::uint8_t> coeffs = view.dense_coeffs;
      if (!view.dense()) {
        coeff_scratch.resize(view.coeff_width);
        view.expand_coeffs(coeff_scratch);
        coeffs = coeff_scratch;
      }
      if (fingerprinter.has_value() &&
          fingerprinter->fingerprint(view.payload) !=
              fingerprinter->combine(coeffs, options.manifest->fingerprints)) {
        // Silent corruption, localized to this exact block: the frame is
        // well-formed (CRC passed) yet its payload contradicts the
        // manifest. The lie is sticky — a refetch serves the same bytes —
        // so the block is written off and the serving node quarantined.
        ++out.faults.integrity_violations;
        integrity_ctr.add();
        obs::emit(obs::EventType::kIntegrityViolation, static_cast<double>(reply.node),
                  static_cast<double>(loc));
        quarantine(reply.node);
        return Delivery::kIntegrityRejected;
      }
      ++result.blocks_retrieved;
      if (decoder.add(view.level, coeffs, view.payload)) ++result.innovative_blocks;
      if (trace) result.level_trace.push_back(decoder.decoded_levels());
      return Delivery::kOk;
    } catch (const codes::WireFormatError&) {
      ++out.faults.wire_errors;
      corrupt_ctr.add();
      return Delivery::kWireRejected;
    }
  };

  /// Append one attempt to the fetch log (trace runs only).
  const auto log_attempt = [&](net::LocationId loc, const FetchReply& reply,
                               Delivery delivery, bool fed) {
    if (!trace) return;
    FetchAttempt a;
    a.location = loc;
    a.node = reply.node;
    a.fault = reply.fault;
    a.wire_rejected = delivery == Delivery::kWireRejected;
    a.integrity_rejected = delivery == Delivery::kIntegrityRejected;
    a.delivered = fed;
    out.fetch_log.push_back(a);
  };

  /// Charge one retryable fault to `node`; true when the node just
  /// exhausted its budget and got blacklisted.
  const auto charge_fault = [&](net::NodeId node) {
    const std::size_t faults = ++node_faults[node];
    if (faults < policy.node_fault_budget) return false;
    if (blacklisted.insert(node).second) {
      ++out.blacklisted_nodes;
      blacklist_ctr.add();
      obs::emit(obs::EventType::kBudgetExhausted, static_cast<double>(node),
                static_cast<double>(faults));
    }
    return true;
  };

  /// Opportunistic single-attempt fetch of the next pending location,
  /// issued when a primary reply blows the hedge deadline. No retries, no
  /// nested hedging — a hedge is a bet, not a commitment.
  const auto hedge_fetch = [&] {
    while (cursor < order.size()) {
      const net::LocationId loc = order[cursor++];
      const net::NodeId node = channel.owner_of(loc);
      if (blacklisted.contains(node) || channel.node_crashed(node)) {
        ++out.blocks_lost;
        lost_ctr.add();
        continue;
      }
      ++out.hedges;
      hedges_ctr.add();
      obs::emit(obs::EventType::kFetchHedged, static_cast<double>(node));
      const FetchReply reply = channel.fetch(loc, rng);
      latency_hist.record(reply.latency_us);
      out.sim_elapsed_us += reply.latency_us;
      bool delivered = false;
      switch (reply.fault) {
        case net::FaultClass::kNone: {
          const Delivery d = deliver(loc, reply);
          delivered = d == Delivery::kOk;
          log_attempt(loc, reply, d, delivered);
          if (d == Delivery::kWireRejected) charge_fault(reply.node);
          break;
        }
        case net::FaultClass::kDeadNode:
          ++out.faults.dead_nodes;
          log_attempt(loc, reply, Delivery::kOk, false);
          break;
        case net::FaultClass::kCrash:
          ++out.faults.crashes;
          crashes_ctr.add();
          log_attempt(loc, reply, Delivery::kOk, false);
          break;
        case net::FaultClass::kTimeout:
          ++out.faults.timeouts;
          timeouts_ctr.add();
          log_attempt(loc, reply, Delivery::kOk, false);
          charge_fault(reply.node);
          break;
        case net::FaultClass::kTransient:
          ++out.faults.transient_errors;
          transient_ctr.add();
          log_attempt(loc, reply, Delivery::kOk, false);
          charge_fault(reply.node);
          break;
        default:
          PRLC_ASSERT(false, "channel returned an in-band fault class");
      }
      if (!delivered) {
        ++out.blocks_lost;
        lost_ctr.add();
      }
      return;
    }
  };

  /// Full self-healing fetch of one location: retry loop with capped
  /// exponential backoff, budget charging, hedging on slow replies.
  /// Wire-rejected frames do NOT retry in place — the location is
  /// deferred to the back of the queue (its attempt count persists in
  /// loc_attempts), so the very next fetch goes to a different node
  /// instead of hammering the one that just served garbage.
  const auto fetch_with_retry = [&](net::LocationId loc) {
    const net::NodeId node = channel.owner_of(loc);
    std::size_t& attempt = loc_attempts[loc];
    while (attempt < policy.max_attempts) {
      const FetchReply reply = channel.fetch(loc, rng);
      latency_hist.record(reply.latency_us);
      out.sim_elapsed_us += reply.latency_us;

      // A reply slower than the deadline — delivered or not — triggers
      // one hedged fetch of the next pending location (more blocks in
      // flight is the erasure-coded answer to stragglers: any innovative
      // block is as good as the slow one).
      if (policy.hedging && reply.latency_us > policy.hedge_deadline_us && !done()) {
        hedge_fetch();
      }

      switch (reply.fault) {
        case net::FaultClass::kNone: {
          const Delivery d = deliver(loc, reply);
          log_attempt(loc, reply, d, d == Delivery::kOk);
          if (d == Delivery::kOk) return;  // healed or clean — done with this block
          if (d == Delivery::kIntegrityRejected) {
            // The node is quarantined and the lie sticky: retrying this
            // location can only replay the same forged bytes.
            ++out.blocks_lost;
            lost_ctr.add();
            return;
          }
          // Wire-rejected: charge the node and defer the location so the
          // next fetch targets a different node.
          ++attempt;
          if (charge_fault(node)) break;  // budget gone: write the block off
          if (attempt < policy.max_attempts) {
            order.push_back(loc);
            ++out.retries;
            retries_ctr.add();
            obs::emit(obs::EventType::kFetchRetry, static_cast<double>(node),
                      static_cast<double>(attempt));
            return;  // no backoff — the collector moves on immediately
          }
          break;  // attempts exhausted
        }
        case net::FaultClass::kDeadNode:
          ++out.faults.dead_nodes;
          log_attempt(loc, reply, Delivery::kOk, false);
          ++out.blocks_lost;
          lost_ctr.add();
          return;  // nothing to retry against
        case net::FaultClass::kCrash:
          ++out.faults.crashes;
          crashes_ctr.add();
          log_attempt(loc, reply, Delivery::kOk, false);
          ++out.blocks_lost;
          lost_ctr.add();
          return;  // the node is gone for the rest of the collection
        case net::FaultClass::kTimeout:
          ++out.faults.timeouts;
          timeouts_ctr.add();
          log_attempt(loc, reply, Delivery::kOk, false);
          ++attempt;
          if (charge_fault(node)) break;
          if (attempt < policy.max_attempts) {
            ++out.retries;
            retries_ctr.add();
            obs::emit(obs::EventType::kFetchRetry, static_cast<double>(node),
                      static_cast<double>(attempt));
            out.sim_elapsed_us += backoff_us(policy, attempt - 1, rng);
            continue;
          }
          break;
        case net::FaultClass::kTransient:
          ++out.faults.transient_errors;
          transient_ctr.add();
          log_attempt(loc, reply, Delivery::kOk, false);
          ++attempt;
          if (charge_fault(node)) break;
          if (attempt < policy.max_attempts) {
            ++out.retries;
            retries_ctr.add();
            obs::emit(obs::EventType::kFetchRetry, static_cast<double>(node),
                      static_cast<double>(attempt));
            out.sim_elapsed_us += backoff_us(policy, attempt - 1, rng);
            continue;
          }
          break;
        default:
          PRLC_ASSERT(false, "channel returned an in-band fault class");
      }
      // Budget exhausted or attempts spent: write the block off.
      ++out.blocks_lost;
      lost_ctr.add();
      return;
    }
    // Deferred location whose attempts ran out before it resurfaced.
    ++out.blocks_lost;
    lost_ctr.add();
  };

  while (cursor < order.size() && !done()) {
    const net::LocationId loc = order[cursor++];
    const net::NodeId node = channel.owner_of(loc);
    if (blacklisted.contains(node) || channel.node_crashed(node)) {
      ++out.blocks_lost;
      lost_ctr.add();
      continue;
    }
    fetch_with_retry(loc);
  }

  result.decoded_levels = decoder.decoded_levels();
  result.decoded_blocks = decoder.decoded_prefix_blocks();
  if (options.target_levels.has_value()) {
    result.target_met = result.decoded_levels >= *options.target_levels;
  }
  out.degraded = out.blocks_lost > 0;
  return out;
}

CollectionOutcome collect(const Predistribution& dist, codes::PriorityDecoder<Field>& decoder,
                          const CollectorOptions& options, Rng& rng) {
  // Null-plan channel: pristine bytes, zero extra Rng draws — but every
  // block still round-trips encode_wire/decode_wire, so the CRC path is
  // exercised by all callers (and any wire bug is counted, not thrown).
  FaultyChannel channel(dist);
  return collect(channel, decoder, options, rng);
}

std::pair<CollectionResult, bool> collect_and_verify(const Predistribution& dist,
                                                     const codes::SourceData<Field>& original,
                                                     Rng& rng) {
  codes::PriorityDecoder<Field> decoder(dist.params().scheme, dist.spec(),
                                        dist.params().block_size);
  const CollectionResult result = collect(dist, decoder, {}, rng).result;

  bool all_match = true;
  for (std::size_t j = 0; j < dist.spec().total(); ++j) {
    if (!decoder.is_block_decoded(j)) continue;
    const auto got = decoder.recovered(j);
    const auto want = original.block(j);
    if (!std::equal(got.begin(), got.end(), want.begin(), want.end())) {
      all_match = false;
      break;
    }
  }
  return {result, all_match};
}

}  // namespace prlc::proto
