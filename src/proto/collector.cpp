#include "proto/collector.h"

#include <algorithm>

#include "util/check.h"

namespace prlc::proto {

CollectionResult collect(const Predistribution& dist, codes::PriorityDecoder<Field>& decoder,
                         const CollectorOptions& options, Rng& rng, bool trace) {
  PRLC_REQUIRE(decoder.scheme() == dist.params().scheme,
               "decoder scheme must match the predistribution");
  PRLC_REQUIRE(decoder.spec() == dist.spec(), "decoder spec must match the predistribution");

  CollectionResult result;
  std::vector<net::LocationId> order = dist.surviving_locations();
  result.surviving_locations = order.size();
  rng.shuffle(std::span<net::LocationId>(order));

  for (net::LocationId loc : order) {
    if (options.max_blocks.has_value() && result.blocks_retrieved >= *options.max_blocks) break;
    const StoredBlock* slot = dist.stored(loc);
    PRLC_ASSERT(slot != nullptr, "surviving location lost its block");
    ++result.blocks_retrieved;
    if (decoder.add(slot->block)) ++result.innovative_blocks;
    if (trace) result.level_trace.push_back(decoder.decoded_levels());
    if (options.target_levels.has_value() &&
        decoder.decoded_levels() >= *options.target_levels) {
      result.target_met = true;
      break;
    }
  }

  result.decoded_levels = decoder.decoded_levels();
  result.decoded_blocks = decoder.decoded_prefix_blocks();
  if (options.target_levels.has_value()) {
    result.target_met = result.decoded_levels >= *options.target_levels;
  }
  return result;
}

std::pair<CollectionResult, bool> collect_and_verify(const Predistribution& dist,
                                                     const codes::SourceData<Field>& original,
                                                     Rng& rng) {
  codes::PriorityDecoder<Field> decoder(dist.params().scheme, dist.spec(),
                                        dist.params().block_size);
  const CollectionResult result = collect(dist, decoder, {}, rng);

  bool all_match = true;
  for (std::size_t j = 0; j < dist.spec().total(); ++j) {
    if (!decoder.is_block_decoded(j)) continue;
    const auto got = decoder.recovered(j);
    const auto want = original.block(j);
    if (!std::equal(got.begin(), got.end(), want.begin(), want.end())) {
      all_match = false;
      break;
    }
  }
  return {result, all_match};
}

}  // namespace prlc::proto
