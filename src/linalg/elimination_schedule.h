// A recorded elimination schedule — the progressive decoder's row
// operations as data instead of side effects.
//
// ProgressiveDecoder normally applies every row operation to coefficient
// vectors *and* payload rows as each equation arrives. For multi-MB
// payloads that serializes gigabytes of GF(2^8) work behind one thread.
// With a recorder attached, a coefficient-only decoder instead emits the
// exact payload-row operations it would have performed; the payload codec
// (src/codec) then replays them as a tiled dependency graph across the
// thread pool.
//
// Operands are *input indices*: equation k's payload buffer is buffer k.
// The decoder works inside the arriving row's buffer and, when the row is
// innovative, binds that same buffer to the row's pivot column — no
// copies ever happen, so a schedule never references more buffers than
// equations offered. Ops for equations that turn out redundant are
// dropped (they only touched a buffer that is then abandoned), which is
// also why replaying a schedule touches strictly less data than the eager
// path would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prlc::linalg {

/// Schedule of payload-row operations over per-equation buffers.
/// `Symbol` matches the recording decoder's field symbol type.
template <typename Symbol>
struct BasicEliminationSchedule {
  static constexpr std::uint32_t kNoInput = 0xffffffffu;

  enum class OpKind : std::uint8_t {
    kAxpy,   ///< buffer[target] ^= factor * buffer[source]
    kScale,  ///< buffer[target] *= factor
  };

  struct Op {
    OpKind kind;
    Symbol factor;
    std::uint32_t target;  ///< input-buffer index written
    std::uint32_t source;  ///< input-buffer index read (kAxpy only)
  };

  /// Row operations in the order the eager decoder would apply them.
  /// Replaying them (in this order, or any order respecting per-buffer
  /// data dependencies) over the raw input payloads reproduces the eager
  /// decoder's stored-row payloads byte for byte.
  std::vector<Op> ops;

  /// pivot_input[p] = input buffer holding pivot row p's payload after
  /// replay; kNoInput when no pivot row exists for column p. When the
  /// decoder reports unknown p decoded, buffer pivot_input[p] holds its
  /// recovered payload.
  std::vector<std::uint32_t> pivot_input;

  /// Number of equations offered while recording (innovative or not).
  std::size_t inputs = 0;

  void reset(std::size_t unknowns) {
    ops.clear();
    pivot_input.assign(unknowns, kNoInput);
    inputs = 0;
  }
};

using EliminationSchedule = BasicEliminationSchedule<std::uint8_t>;

}  // namespace prlc::linalg
