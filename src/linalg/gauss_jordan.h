// Batch Gauss-Jordan elimination: reduced row-echelon form, rank, inverse.
//
// The paper (Sec. 3.2) uses Gauss-Jordan rather than plain Gaussian
// elimination because the RREF exposes partial solutions of an
// underdetermined system: once the first k columns carry an identity
// submatrix, the first k unknowns are solved. This header provides the
// batch variant (whole matrix at once) used by tests and by one-shot
// decodes; the online variant lives in progressive_decoder.h.
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.h"
#include "obs/metrics.h"

namespace prlc::linalg {

/// Result of an RREF reduction.
struct RrefInfo {
  std::size_t rank = 0;
  /// pivot_cols[i] is the column of the i-th pivot row, strictly increasing.
  std::vector<std::size_t> pivot_cols;
};

/// In-place reduction of `m` to reduced row-echelon form. If `rhs` is
/// non-null it must have the same number of rows; identical row operations
/// are applied to it (the "payload" side of a decoding matrix).
template <gf::FieldPolicy F>
RrefInfo rref(Matrix<F>& m, Matrix<F>* rhs = nullptr) {
  if (rhs != nullptr) {
    PRLC_REQUIRE(rhs->rows() == m.rows(), "rhs row count must match the matrix");
  }
  using Symbol = typename F::Symbol;
  static obs::Counter& calls = obs::counter("linalg.rref_calls");
  static obs::Counter& eliminated = obs::counter("linalg.rref_rows_eliminated");
  static obs::LatencyHistogram& rref_ns = obs::histogram("linalg.rref_ns");
  calls.add();
  obs::ScopedTimer timer(rref_ns);
  RrefInfo info;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < m.cols() && pivot_row < m.rows(); ++col) {
    // Find a row at or below pivot_row with a nonzero in this column.
    std::size_t found = m.rows();
    for (std::size_t r = pivot_row; r < m.rows(); ++r) {
      if (m.at(r, col) != 0) {
        found = r;
        break;
      }
    }
    if (found == m.rows()) continue;
    if (found != pivot_row) {
      for (std::size_t c = 0; c < m.cols(); ++c) std::swap(m.at(found, c), m.at(pivot_row, c));
      if (rhs != nullptr) {
        for (std::size_t c = 0; c < rhs->cols(); ++c) {
          std::swap(rhs->at(found, c), rhs->at(pivot_row, c));
        }
      }
    }
    // Normalize the pivot row.
    const Symbol piv = m.at(pivot_row, col);
    if (piv != 1) {
      const Symbol piv_inv = F::inv(piv);
      F::scale(m.row(pivot_row), piv_inv);
      if (rhs != nullptr) F::scale(rhs->row(pivot_row), piv_inv);
    }
    // Eliminate the column everywhere else (above and below: Jordan step).
    // For batched fields the whole step is two multi-row axpy calls, so
    // the pivot row streams through cache once for all targets.
    if constexpr (gf::BatchedFieldPolicy<F>) {
      std::vector<Symbol*> targets;
      std::vector<Symbol*> rhs_targets;
      std::vector<Symbol> factors;
      targets.reserve(m.rows());
      factors.reserve(m.rows());
      for (std::size_t r = 0; r < m.rows(); ++r) {
        if (r == pivot_row) continue;
        const Symbol factor = m.at(r, col);
        if (factor == 0) continue;
        targets.push_back(m.row(r).data());
        if (rhs != nullptr) rhs_targets.push_back(rhs->row(r).data());
        factors.push_back(factor);
      }
      eliminated.add(factors.size());
      F::axpy_batch(std::span<Symbol* const>(targets), std::span<const Symbol>(factors),
                    m.row(pivot_row));
      if (rhs != nullptr) {
        F::axpy_batch(std::span<Symbol* const>(rhs_targets),
                      std::span<const Symbol>(factors), rhs->row(pivot_row));
      }
    } else {
      for (std::size_t r = 0; r < m.rows(); ++r) {
        if (r == pivot_row) continue;
        const Symbol factor = m.at(r, col);
        if (factor == 0) continue;
        eliminated.add();
        F::axpy(m.row(r), factor, m.row(pivot_row));
        if (rhs != nullptr) F::axpy(rhs->row(r), factor, rhs->row(pivot_row));
      }
    }
    info.pivot_cols.push_back(col);
    ++pivot_row;
  }
  info.rank = pivot_row;
  return info;
}

/// Rank of a matrix (by copy + RREF).
template <gf::FieldPolicy F>
std::size_t rank(const Matrix<F>& m) {
  Matrix<F> copy = m;
  return rref(copy).rank;
}

/// Inverse of a square matrix; std::nullopt when singular.
template <gf::FieldPolicy F>
std::optional<Matrix<F>> invert(const Matrix<F>& m) {
  PRLC_REQUIRE(m.rows() == m.cols(), "only square matrices can be inverted");
  Matrix<F> work = m;
  Matrix<F> inv = Matrix<F>::identity(m.rows());
  const RrefInfo info = rref(work, &inv);
  if (info.rank != m.rows()) return std::nullopt;
  return inv;
}

/// Length of the solved prefix exposed by an RREF: the largest k such that
/// the first k columns contain unit pivots and no other nonzero appears in
/// those pivot rows (i.e., unknowns 0..k-1 are fully determined). This is
/// exactly the paper's partial-decoding criterion (Fig. 2(c)).
template <gf::FieldPolicy F>
std::size_t solved_prefix(const Matrix<F>& rref_matrix, const RrefInfo& info) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < info.pivot_cols.size(); ++i) {
    if (info.pivot_cols[i] != k) break;
    // The pivot row must be a unit vector for the unknown to be decoded.
    bool unit = true;
    auto row = rref_matrix.row(i);
    for (std::size_t c = 0; c < rref_matrix.cols(); ++c) {
      if (c != k && row[c] != 0) {
        unit = false;
        break;
      }
    }
    if (!unit) break;
    ++k;
  }
  return k;
}

}  // namespace prlc::linalg
