// Dense matrices over a GF(2^m) field policy.
//
// Row-major storage; rows are exposed as spans so coding kernels can use
// the field's bulk operations. Sized for the paper's scales (N ~ 1000
// source blocks), so no blocking/tiling is attempted.
#pragma once

#include <span>
#include <vector>

#include "gf/field_concept.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::linalg {

template <gf::FieldPolicy F>
class Matrix {
 public:
  using Symbol = typename F::Symbol;

  Matrix() = default;

  /// rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Symbol{0}) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  Symbol& at(std::size_t r, std::size_t c) {
    PRLC_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  Symbol at(std::size_t r, std::size_t c) const {
    PRLC_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  std::span<Symbol> row(std::size_t r) {
    PRLC_REQUIRE(r < rows_, "matrix row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const Symbol> row(std::size_t r) const {
    PRLC_REQUIRE(r < rows_, "matrix row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  /// Append a row (copied); must match the column count (or set it if
  /// this is the first row of a default-constructed matrix).
  void append_row(std::span<const Symbol> values) {
    if (rows_ == 0 && cols_ == 0) cols_ = values.size();
    PRLC_REQUIRE(values.size() == cols_, "appended row width mismatch");
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
  }

  /// n x n identity.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = Symbol{1};
    return m;
  }

  /// Matrix with every entry drawn uniformly from the field.
  static Matrix random(std::size_t rows, std::size_t cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& v : m.data_) v = static_cast<Symbol>(rng.uniform(F::order()));
    return m;
  }

  /// this * other (naive cubic product; test-support only).
  Matrix multiply(const Matrix& other) const {
    PRLC_REQUIRE(cols_ == other.rows_, "matrix product shape mismatch");
    Matrix out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const Symbol a = at(i, k);
        if (a == 0) continue;
        F::axpy(out.row(i), a, other.row(k));
      }
    }
    return out;
  }

  /// y = this * x for a column vector x.
  std::vector<Symbol> apply(std::span<const Symbol> x) const {
    PRLC_REQUIRE(x.size() == cols_, "matrix-vector shape mismatch");
    std::vector<Symbol> y(rows_, Symbol{0});
    for (std::size_t i = 0; i < rows_; ++i) y[i] = F::dot(row(i), x);
    return y;
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Symbol> data_;
};

}  // namespace prlc::linalg
