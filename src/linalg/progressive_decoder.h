// Online Gauss-Jordan elimination with payload rows — the partial-decoding
// engine of Sec. 3.2.
//
// Coded blocks arrive one at a time at the data-collecting server. Each
// block contributes one linear equation (coefficients over the source
// blocks, plus the coded payload). The decoder maintains the reduced
// row-echelon form incrementally, so after *every* insertion it can report
// which unknowns are already solved — in particular the longest solved
// prefix, which under the strict priority model is what the application
// cares about. The RREF of a matrix is unique for a given row space, so
// this online variant solves exactly what batch Gauss-Jordan would.
//
// Complexity: an innovative row costs O(r * w) symbol operations where r
// is the current rank and w the row support width. Priority codes keep w
// small for high-priority rows (support is the level prefix), which is
// what makes decoding-curve simulations at N = 1000 practical.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "gf/field_concept.h"
#include "linalg/elimination_schedule.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace prlc::linalg {

template <gf::FieldPolicy F>
class ProgressiveDecoder {
 public:
  using Symbol = typename F::Symbol;

  /// A decoder for `unknowns` source blocks whose payloads are
  /// `payload_size` symbols each (0 = coefficient-only decoding, used by
  /// decoding-curve simulations where only *which* blocks decode matters).
  explicit ProgressiveDecoder(std::size_t unknowns, std::size_t payload_size = 0)
      : unknowns_(unknowns), payload_size_(payload_size), by_pivot_(unknowns) {
    PRLC_REQUIRE(unknowns > 0, "decoder needs at least one unknown");
  }

  using Schedule = BasicEliminationSchedule<Symbol>;

  std::size_t unknowns() const { return unknowns_; }
  std::size_t payload_size() const { return payload_size_; }
  std::size_t rank() const { return rank_; }

  /// Attach a schedule recorder: every subsequent add() appends the
  /// payload-row operations it performs (or would perform, on a
  /// coefficient-only decoder) to `schedule` instead of leaving them
  /// implicit. Must be attached before the first equation; pass nullptr
  /// to detach. The recorded ops reference equations by arrival index —
  /// see elimination_schedule.h for replay semantics.
  void set_schedule_recorder(Schedule* schedule) {
    PRLC_REQUIRE(schedule == nullptr || seen_ == 0,
                 "schedule recording must start on a fresh decoder");
    recorder_ = schedule;
    if (recorder_ != nullptr) recorder_->reset(unknowns_);
  }

  /// Number of equations offered via add(), innovative or not.
  std::size_t equations_seen() const { return seen_; }

  /// Insert one equation. `coeffs` must have length unknowns();
  /// `payload` must have length payload_size(). Returns true when the
  /// equation was innovative (increased the rank).
  bool add(std::span<const Symbol> coeffs, std::span<const Symbol> payload = {}) {
    PRLC_REQUIRE(coeffs.size() == unknowns_, "coefficient vector width mismatch");
    PRLC_REQUIRE(payload.size() == payload_size_, "payload width mismatch");
    ++seen_;
    // Shared across field instantiations: the registry dedupes by name.
    static obs::Counter& rows_received = obs::counter("decoder.rows_received");
    static obs::Counter& rows_innovative = obs::counter("decoder.rows_innovative");
    static obs::Counter& rows_redundant = obs::counter("decoder.rows_redundant");
    static obs::LatencyHistogram& add_ns = obs::histogram("decoder.add_ns");
    rows_received.add();
    obs::ScopedTimer timer(add_ns);

    work_coef_.assign(coeffs.begin(), coeffs.end());
    work_payload_.assign(payload.begin(), payload.end());
    std::size_t end = support_end(work_coef_);

    // This equation's input-buffer index for schedule recording. Ops land
    // in pending_ops_ first and are committed only if the row turns out
    // innovative — a redundant row's buffer is abandoned, so its ops
    // cannot affect any stored payload.
    const auto input = static_cast<std::uint32_t>(seen_ - 1);
    if (recorder_ != nullptr) {
      recorder_->inputs = seen_;
      pending_ops_.clear();
    }

    // Reduce against every existing pivot row (scanning left to right);
    // the first nonzero column without a pivot row becomes this row's
    // pivot, and elimination continues past it so the stored row is zero
    // at *all* other pivot columns — the RREF invariant the decoded-unknown
    // check relies on.
    std::size_t pivot = unknowns_;
    for (std::size_t j = 0; j < end; ++j) {
      const Symbol v = work_coef_[j];
      if (v == 0) continue;
      const Row* existing = by_pivot_[j].get();
      if (existing == nullptr) {
        if (pivot == unknowns_) pivot = j;
        continue;
      }
      static obs::Counter& pivot_ops = obs::counter("decoder.pivot_ops");
      pivot_ops.add();
      if (recorder_ != nullptr) {
        pending_ops_.push_back({Schedule::OpKind::kAxpy, v, input,
                                recorder_->pivot_input[j]});
      }
      axpy_row(work_coef_, work_payload_, v, *existing);
      if (existing->end > end) end = existing->end;
      PRLC_ASSERT(work_coef_[j] == 0, "forward elimination left a nonzero pivot");
    }
    if (pivot == unknowns_) {
      rows_redundant.add();
      return false;  // linearly dependent
    }

    // Normalize so the pivot coefficient is 1.
    const Symbol piv = work_coef_[pivot];
    if (piv != 1) {
      const Symbol piv_inv = F::inv(piv);
      F::scale(std::span<Symbol>(work_coef_).subspan(pivot, end - pivot), piv_inv);
      F::scale(std::span<Symbol>(work_payload_), piv_inv);
      if (recorder_ != nullptr) {
        pending_ops_.push_back({Schedule::OpKind::kScale, piv_inv, input, input});
      }
    }

    auto row = std::make_unique<Row>();
    row->pivot = pivot;
    row->end = end;
    row->coef = work_coef_;
    row->payload = work_payload_;

    if (recorder_ != nullptr) {
      // Commit: this buffer now *is* pivot row `pivot`. Back-elimination
      // below records its ops directly (they are unconditional).
      recorder_->ops.insert(recorder_->ops.end(), pending_ops_.begin(), pending_ops_.end());
      recorder_->pivot_input[pivot] = input;
    }

    back_eliminate(*row);

    row->nnz_valid = false;
    by_pivot_[pivot] = std::move(row);
    ++rank_;
    rows_innovative.add();
    advance_prefix();
    static obs::Gauge& watermark = obs::gauge("decoder.prefix_watermark");
    watermark.set_max(static_cast<std::int64_t>(decoded_prefix_));
    return true;
  }

  /// True when unknown `i` is fully determined (e_i lies in the row space).
  /// Monotone in added equations.
  bool is_decoded(std::size_t i) const {
    PRLC_REQUIRE(i < unknowns_, "unknown index out of range");
    const Row* r = by_pivot_[i].get();
    return r != nullptr && row_nnz(*r) == 1;
  }

  /// Largest k such that unknowns 0..k-1 are all decoded — the paper's
  /// partially-decoded prefix under the strict priority model.
  std::size_t decoded_prefix() const { return decoded_prefix_; }

  /// Total number of decoded unknowns (not necessarily a prefix).
  std::size_t decoded_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < unknowns_; ++i) {
      if (by_pivot_[i] != nullptr && row_nnz(*by_pivot_[i]) == 1) ++n;
    }
    return n;
  }

  /// Recovered payload of a decoded unknown. Requires is_decoded(i) and a
  /// nonzero payload_size.
  std::span<const Symbol> solution(std::size_t i) const {
    PRLC_REQUIRE(payload_size_ > 0, "decoder was built without payloads");
    PRLC_REQUIRE(is_decoded(i), "unknown is not decoded yet");
    return by_pivot_[i]->payload;
  }

  /// True when a pivot row exists for column i.
  bool has_pivot(std::size_t i) const {
    PRLC_REQUIRE(i < unknowns_, "unknown index out of range");
    return by_pivot_[i] != nullptr;
  }

  /// Coefficient vector (full width) of the pivot row for column i.
  /// Inspection hook for invariant checks; requires has_pivot(i).
  std::span<const Symbol> row_coefficients(std::size_t i) const {
    PRLC_REQUIRE(has_pivot(i), "no pivot row for this column");
    return by_pivot_[i]->coef;
  }

 private:
  struct Row {
    std::size_t pivot = 0;
    std::size_t end = 0;  // exclusive upper bound of coefficient support
    std::vector<Symbol> coef;
    std::vector<Symbol> payload;
    mutable std::size_t nnz = 0;
    mutable bool nnz_valid = false;
  };

  static std::size_t support_end(const std::vector<Symbol>& v) {
    std::size_t end = v.size();
    while (end > 0 && v[end - 1] == 0) --end;
    return end;
  }

  /// target -= factor * source (XOR-add in characteristic 2), restricted
  /// to the source row's support window, payloads included.
  void axpy_row(std::vector<Symbol>& coef, std::vector<Symbol>& payload, Symbol factor,
                const Row& source) {
    F::axpy(std::span<Symbol>(coef).subspan(source.pivot, source.end - source.pivot), factor,
            std::span<const Symbol>(source.coef).subspan(source.pivot, source.end - source.pivot));
    if (payload_size_ > 0) {
      F::axpy(std::span<Symbol>(payload), factor, std::span<const Symbol>(source.payload));
    }
  }

  /// Eliminate the new pivot column from every stored row. Stored rows all
  /// keep full-width coefficient vectors (end is only a logical support
  /// bound), so for a batched field the whole step collapses into two
  /// multi-row axpy calls — one over the coefficient windows, one over the
  /// payloads — letting the kernel tile the shared source row through
  /// cache once instead of re-streaming it per target row.
  void back_eliminate(Row& row) {
    static obs::Counter& back_rows = obs::counter("decoder.back_elim_rows");
    const std::size_t pivot = row.pivot;
    const std::uint32_t source =
        recorder_ != nullptr ? recorder_->pivot_input[pivot] : 0;
    if constexpr (gf::BatchedFieldPolicy<F>) {
      batch_coef_targets_.clear();
      batch_payload_targets_.clear();
      batch_factors_.clear();
      for (std::size_t p = 0; p < unknowns_; ++p) {
        Row* r = by_pivot_[p].get();
        if (r == nullptr || pivot >= r->end) continue;
        const Symbol factor = r->coef[pivot];
        if (factor == 0) continue;
        batch_coef_targets_.push_back(r->coef.data() + pivot);
        if (payload_size_ > 0) batch_payload_targets_.push_back(r->payload.data());
        batch_factors_.push_back(factor);
        if (recorder_ != nullptr) {
          recorder_->ops.push_back(
              {Schedule::OpKind::kAxpy, factor, recorder_->pivot_input[p], source});
        }
        if (row.end > r->end) r->end = row.end;
        r->nnz_valid = false;
      }
      back_rows.add(batch_factors_.size());
      F::axpy_batch(std::span<Symbol* const>(batch_coef_targets_),
                    std::span<const Symbol>(batch_factors_),
                    std::span<const Symbol>(row.coef).subspan(pivot, row.end - pivot));
      if (payload_size_ > 0) {
        F::axpy_batch(std::span<Symbol* const>(batch_payload_targets_),
                      std::span<const Symbol>(batch_factors_),
                      std::span<const Symbol>(row.payload));
      }
    } else {
      for (std::size_t p = 0; p < unknowns_; ++p) {
        Row* r = by_pivot_[p].get();
        if (r == nullptr || pivot >= r->end) continue;
        const Symbol factor = r->coef[pivot];
        if (factor == 0) continue;
        back_rows.add();
        if (recorder_ != nullptr) {
          recorder_->ops.push_back(
              {Schedule::OpKind::kAxpy, factor, recorder_->pivot_input[p], source});
        }
        axpy_row(r->coef, r->payload, factor, row);
        if (row.end > r->end) r->end = row.end;
        r->nnz_valid = false;
      }
    }
  }

  std::size_t row_nnz(const Row& r) const {
    if (!r.nnz_valid) {
      std::size_t n = 0;
      for (std::size_t c = r.pivot; c < r.end; ++c) {
        if (r.coef[c] != 0) ++n;
      }
      r.nnz = n;
      r.nnz_valid = true;
    }
    return r.nnz;
  }

  void advance_prefix() {
    while (decoded_prefix_ < unknowns_) {
      const Row* r = by_pivot_[decoded_prefix_].get();
      if (r == nullptr || row_nnz(*r) != 1) break;
      ++decoded_prefix_;
    }
  }

  std::size_t unknowns_;
  std::size_t payload_size_;
  std::vector<std::unique_ptr<Row>> by_pivot_;
  std::size_t rank_ = 0;
  std::size_t seen_ = 0;
  std::size_t decoded_prefix_ = 0;
  std::vector<Symbol> work_coef_;
  std::vector<Symbol> work_payload_;
  // Scratch for the batched back-elimination (reused across add() calls).
  std::vector<Symbol*> batch_coef_targets_;
  std::vector<Symbol*> batch_payload_targets_;
  std::vector<Symbol> batch_factors_;
  // Schedule recording (see set_schedule_recorder); pending_ops_ holds the
  // current equation's forward-elimination ops until it proves innovative.
  Schedule* recorder_ = nullptr;
  std::vector<typename Schedule::Op> pending_ops_;
};

}  // namespace prlc::linalg
