// Online Gauss-Jordan elimination with payload rows — the partial-decoding
// engine of Sec. 3.2 — extended with a hybrid peeling/GE sparse path.
//
// Coded blocks arrive one at a time at the data-collecting server. Each
// block contributes one linear equation (coefficients over the source
// blocks, plus the coded payload). The decoder maintains the reduced
// row-echelon form incrementally, so after *every* insertion it can report
// which unknowns are already solved — in particular the longest solved
// prefix, which under the strict priority model is what the application
// cares about. The RREF of a matrix is unique for a given row space, so
// this online variant solves exactly what batch Gauss-Jordan would.
//
// Hybrid storage (the N >= 10^5 path). The paper leans on O(ln N)-sparse
// coefficients (Dimakis et al., "Decentralized Erasure Codes"), and dense
// full-width rows cap experiments near N = 1000: storing N rows of N
// symbols is O(N^2) memory and every insertion scans all pivot rows.
// This decoder therefore keeps two row representations behind one RREF
// invariant:
//
//   * sparse rows — sorted (column, value) pairs, indexed by a
//     column -> rows map (`cols_`) so eliminations only touch rows that
//     actually intersect the new pivot column. Eliminating against a
//     *singleton* row (one nonzero == a decoded unknown) is the GF(2^q)
//     generalization of XOR peeling: subtract value * solution, O(1) per
//     reference (see codes/peeling_decoder.{h,cpp} for the standalone
//     XOR/GF(256) peeling decoder this path subsumes).
//   * dense rows — a contiguous coefficient window [pivot, end), used
//     once a row's fill-in passes the density threshold (see
//     `should_store_dense`). Dense rows are found through a coarse
//     block-granular cover index (`dense_cover_`) and are updated with
//     the batched SIMD axpy path (PR 2 kernels) during back-elimination
//     — the "dense residual" of the hybrid: only rows peeling could not
//     keep sparse pay the SIMD-row cost.
//
// Both representations run the same elimination order over exact field
// arithmetic, so results (rank, innovation verdicts, decoded set, and
// recovered payload bytes) are identical to the legacy dense decoder —
// the differential fuzz suite in tests/linalg asserts this byte for byte.
//
// Complexity: an equation that peels costs O(nnz); an innovative sparse
// row costs O(fill-in); only densified rows pay O(window) SIMD work.
// Priority codes keep windows small for high-priority rows (support is
// the level prefix), and chunked sparsity (see EncoderOptions.chunk_size)
// bounds fill-in by the chunk width, which is what makes decoding-curve
// runs at N = 10^5 practical (bench/abl_sparsity).
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "gf/field_concept.h"
#include "linalg/elimination_schedule.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace prlc::linalg {

template <gf::FieldPolicy F>
class ProgressiveDecoder {
 public:
  using Symbol = typename F::Symbol;

  /// A decoder for `unknowns` source blocks whose payloads are
  /// `payload_size` symbols each (0 = coefficient-only decoding, used by
  /// decoding-curve simulations where only *which* blocks decode matters).
  explicit ProgressiveDecoder(std::size_t unknowns, std::size_t payload_size = 0)
      : unknowns_(unknowns),
        payload_size_(payload_size),
        by_pivot_(unknowns),
        cols_(unknowns),
        dense_cover_((unknowns + kCoverBlock - 1) / kCoverBlock),
        work_coef_(unknowns, Symbol{0}),
        in_heap_(unknowns, 0) {
    PRLC_REQUIRE(unknowns > 0, "decoder needs at least one unknown");
    PRLC_REQUIRE(unknowns <= 0xffffffffu, "decoder caps unknowns at 2^32-1");
  }

  using Schedule = BasicEliminationSchedule<Symbol>;

  std::size_t unknowns() const { return unknowns_; }
  std::size_t payload_size() const { return payload_size_; }
  std::size_t rank() const { return rank_; }

  /// Attach a schedule recorder: every subsequent add() appends the
  /// payload-row operations it performs (or would perform, on a
  /// coefficient-only decoder) to `schedule` instead of leaving them
  /// implicit. Must be attached before the first equation; pass nullptr
  /// to detach. The recorded ops reference equations by arrival index —
  /// see elimination_schedule.h for replay semantics.
  void set_schedule_recorder(Schedule* schedule) {
    PRLC_REQUIRE(schedule == nullptr || seen_ == 0,
                 "schedule recording must start on a fresh decoder");
    recorder_ = schedule;
    if (recorder_ != nullptr) recorder_->reset(unknowns_);
  }

  /// Number of equations offered via add(), innovative or not.
  std::size_t equations_seen() const { return seen_; }

  /// Insert one equation from a full-width coefficient vector. `coeffs`
  /// must have length unknowns(); `payload` must have length
  /// payload_size(). Returns true when the equation was innovative
  /// (increased the rank). Internally routes sparse content (few
  /// nonzeros) through the peeling/sparse path, so callers holding dense
  /// buffers — the wire/collector path — still benefit from sparsity.
  bool add(std::span<const Symbol> coeffs, std::span<const Symbol> payload = {}) {
    PRLC_REQUIRE(coeffs.size() == unknowns_, "coefficient vector width mismatch");
    // Route through the sparse path when the row is sparse enough that
    // gathering pays for itself; the two paths are exactly equivalent.
    std::size_t nnz = 0;
    for (const Symbol c : coeffs) nnz += c != 0 ? 1 : 0;
    if (nnz * kDensityDivisor <= unknowns_) {
      in_idx_.clear();
      in_val_.clear();
      in_idx_.reserve(nnz);
      in_val_.reserve(nnz);
      for (std::size_t j = 0; j < coeffs.size(); ++j) {
        if (coeffs[j] != 0) {
          in_idx_.push_back(static_cast<std::uint32_t>(j));
          in_val_.push_back(coeffs[j]);
        }
      }
      return add_gathered(in_idx_, in_val_, payload);
    }
    return add_dense_scan(coeffs, payload);
  }

  /// Insert one equation given in sparse form: strictly increasing
  /// in-range `indices` with matching nonzero `values`. Exactly
  /// equivalent to add() on the expanded row; cost O(nnz + fill-in)
  /// instead of O(unknowns).
  bool add_sparse(std::span<const std::uint32_t> indices, std::span<const Symbol> values,
                  std::span<const Symbol> payload = {}) {
    PRLC_REQUIRE(indices.size() == values.size(),
                 "sparse row index/value length mismatch");
    for (std::size_t k = 0; k < indices.size(); ++k) {
      PRLC_REQUIRE(indices[k] < unknowns_, "sparse row index out of range");
      PRLC_REQUIRE(k == 0 || indices[k - 1] < indices[k],
                   "sparse row indices must be strictly increasing");
      PRLC_REQUIRE(values[k] != 0, "sparse row stores nonzero values only");
    }
    return add_gathered(indices, values, payload);
  }

  /// True when unknown `i` is fully determined (e_i lies in the row space).
  /// Monotone in added equations.
  bool is_decoded(std::size_t i) const {
    PRLC_REQUIRE(i < unknowns_, "unknown index out of range");
    const Row* r = by_pivot_[i].get();
    return r != nullptr && is_singleton(*r);
  }

  /// Largest k such that unknowns 0..k-1 are all decoded — the paper's
  /// partially-decoded prefix under the strict priority model.
  std::size_t decoded_prefix() const { return decoded_prefix_; }

  /// Total number of decoded unknowns (not necessarily a prefix).
  std::size_t decoded_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < unknowns_; ++i) {
      if (by_pivot_[i] != nullptr && is_singleton(*by_pivot_[i])) ++n;
    }
    return n;
  }

  /// Recovered payload of a decoded unknown. Requires is_decoded(i) and a
  /// nonzero payload_size.
  std::span<const Symbol> solution(std::size_t i) const {
    PRLC_REQUIRE(payload_size_ > 0, "decoder was built without payloads");
    PRLC_REQUIRE(is_decoded(i), "unknown is not decoded yet");
    return by_pivot_[i]->payload;
  }

  /// True when a pivot row exists for column i.
  bool has_pivot(std::size_t i) const {
    PRLC_REQUIRE(i < unknowns_, "unknown index out of range");
    return by_pivot_[i] != nullptr;
  }

  /// Coefficient of pivot row `pivot` at column `col`. Inspection hook
  /// for invariant checks; requires has_pivot(pivot).
  Symbol row_coefficient(std::size_t pivot, std::size_t col) const {
    PRLC_REQUIRE(has_pivot(pivot), "no pivot row for this column");
    PRLC_REQUIRE(col < unknowns_, "column out of range");
    const Row& r = *by_pivot_[pivot];
    if (col < r.pivot || col >= r.end) return 0;
    if (r.dense) return r.coef[col - r.pivot];
    const auto it = std::lower_bound(r.idx.begin(), r.idx.end(),
                                     static_cast<std::uint32_t>(col));
    if (it == r.idx.end() || *it != col) return 0;
    return r.val[static_cast<std::size_t>(it - r.idx.begin())];
  }

  /// Exclusive support bound of pivot row `pivot` — kept tight: the
  /// coefficient at end-1 is always nonzero (the satellite fix for the
  /// grow-only bound the dense decoder used to keep).
  std::size_t row_support_end(std::size_t pivot) const {
    PRLC_REQUIRE(has_pivot(pivot), "no pivot row for this column");
    return by_pivot_[pivot]->end;
  }

  /// Storage/behaviour statistics for benches and tests.
  struct Stats {
    std::size_t sparse_rows = 0;   ///< rows stored as (index, value) pairs
    std::size_t dense_rows = 0;    ///< rows stored as dense windows
    std::size_t coef_bytes = 0;    ///< resident coefficient bytes (both kinds)
    std::size_t peel_ops = 0;      ///< eliminations against singleton rows
    std::size_t densifications = 0;  ///< sparse rows converted to dense
  };
  Stats stats() const {
    Stats s;
    s.peel_ops = peel_ops_;
    s.densifications = densifications_;
    for (std::size_t i = 0; i < unknowns_; ++i) {
      const Row* r = by_pivot_[i].get();
      if (r == nullptr) continue;
      if (r->dense) {
        ++s.dense_rows;
        s.coef_bytes += r->coef.capacity() * sizeof(Symbol);
      } else {
        ++s.sparse_rows;
        s.coef_bytes += r->idx.capacity() * sizeof(std::uint32_t) +
                        r->val.capacity() * sizeof(Symbol);
      }
    }
    return s;
  }

 private:
  // Sparse storage costs ~(sizeof idx + sizeof val) per entry vs
  // sizeof(Symbol) per window slot, and scalar scatter ops instead of
  // SIMD; a row converts to a dense window once nnz exceeds 1/8 of its
  // support window (see should_store_dense).
  static constexpr std::size_t kDensityDivisor = 8;
  // Dense rows are indexed at this column granularity (dense_cover_).
  static constexpr std::size_t kCoverBlock = 256;

  struct Row {
    std::size_t pivot = 0;
    std::size_t end = 0;  ///< exclusive support bound, kept tight
    bool dense = false;
    std::vector<Symbol> coef;         ///< dense: window [pivot, end)
    std::vector<std::uint32_t> idx;   ///< sparse: sorted support columns
    std::vector<Symbol> val;          ///< sparse: values matching idx
    std::vector<Symbol> payload;
    std::uint32_t cover_end_block = 0;  ///< dense_cover_ registration bound
  };

  static bool should_store_dense(std::size_t nnz, std::size_t window) {
    return nnz * kDensityDivisor >= window;
  }

  /// O(1) check for a decoded row (support bounds are kept tight, so a
  /// one-column window means exactly the unit pivot).
  static bool is_singleton(const Row& r) {
    return r.dense ? r.end == r.pivot + 1 : r.idx.size() == 1;
  }

  // ---- shared elimination machinery -------------------------------------

  /// Record a forward-elimination op against pivot row `j`.
  void record_forward(std::size_t j, Symbol factor, std::uint32_t input) {
    if (recorder_ != nullptr) {
      pending_ops_.push_back(
          {Schedule::OpKind::kAxpy, factor, input, recorder_->pivot_input[j]});
    }
  }

  /// work_payload_ -= factor * source payload.
  void payload_axpy(Symbol factor, const Row& source) {
    if (payload_size_ > 0) {
      F::axpy(std::span<Symbol>(work_payload_), factor,
              std::span<const Symbol>(source.payload));
    }
  }

  /// Dense-scan forward elimination: the legacy path for rows that are
  /// already dense. Scans columns left to right over the work buffer.
  bool add_dense_scan(std::span<const Symbol> coeffs, std::span<const Symbol> payload) {
    PRLC_REQUIRE(payload.size() == payload_size_, "payload width mismatch");
    ++seen_;
    static obs::Counter& rows_received = obs::counter("decoder.rows_received");
    static obs::Counter& rows_innovative = obs::counter("decoder.rows_innovative");
    static obs::Counter& rows_redundant = obs::counter("decoder.rows_redundant");
    static obs::LatencyHistogram& add_ns = obs::histogram("decoder.add_ns");
    rows_received.add();
    obs::ScopedTimer timer(add_ns);

    std::copy(coeffs.begin(), coeffs.end(), work_coef_.begin());
    work_payload_.assign(payload.begin(), payload.end());
    std::size_t end = unknowns_;
    while (end > 0 && work_coef_[end - 1] == 0) --end;

    const auto input = static_cast<std::uint32_t>(seen_ - 1);
    if (recorder_ != nullptr) {
      recorder_->inputs = seen_;
      pending_ops_.clear();
    }

    static obs::Counter& pivot_ops = obs::counter("decoder.pivot_ops");
    std::size_t pivot = unknowns_;
    for (std::size_t j = 0; j < end; ++j) {
      const Symbol v = work_coef_[j];
      if (v == 0) continue;
      const Row* existing = by_pivot_[j].get();
      if (existing == nullptr) {
        if (pivot == unknowns_) pivot = j;
        continue;
      }
      pivot_ops.add();
      if (is_singleton(*existing)) {
        ++peel_ops_;
        obs::emit(obs::EventType::kPeel, static_cast<double>(j));
      }
      record_forward(j, v, input);
      eliminate_into_work(v, *existing);
      if (existing->end > end) end = existing->end;
      PRLC_ASSERT(work_coef_[j] == 0, "forward elimination left a nonzero pivot");
    }
    if (pivot == unknowns_) {
      // Restore the scratch row to all-zeros for the next call.
      std::fill(work_coef_.begin(), work_coef_.begin() + static_cast<std::ptrdiff_t>(end),
                Symbol{0});
      rows_redundant.add();
      return false;
    }
    while (end > pivot && work_coef_[end - 1] == 0) --end;
    normalize_work(pivot, end, input);
    store_and_back_eliminate(pivot, end, input, /*from_sparse=*/false);
    // store_and_back_eliminate consumed and re-zeroed the scratch window.
    rows_innovative.add();
    return true;
  }

  /// Sparse/heap forward elimination: processes only columns that are (or
  /// become) nonzero, in increasing order — identical column order, hence
  /// identical arithmetic, to the dense scan.
  bool add_gathered(std::span<const std::uint32_t> indices, std::span<const Symbol> values,
                    std::span<const Symbol> payload) {
    PRLC_REQUIRE(payload.size() == payload_size_, "payload width mismatch");
    ++seen_;
    static obs::Counter& rows_received = obs::counter("decoder.rows_received");
    static obs::Counter& rows_innovative = obs::counter("decoder.rows_innovative");
    static obs::Counter& rows_redundant = obs::counter("decoder.rows_redundant");
    static obs::LatencyHistogram& add_ns = obs::histogram("decoder.add_ns");
    rows_received.add();
    obs::ScopedTimer timer(add_ns);

    work_payload_.assign(payload.begin(), payload.end());
    heap_.clear();
    touched_.clear();
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const std::uint32_t j = indices[k];
      work_coef_[j] = values[k];
      touched_.push_back(j);
      heap_push(j);
    }

    const auto input = static_cast<std::uint32_t>(seen_ - 1);
    if (recorder_ != nullptr) {
      recorder_->inputs = seen_;
      pending_ops_.clear();
    }

    static obs::Counter& pivot_ops = obs::counter("decoder.pivot_ops");
    std::size_t pivot = unknowns_;
    while (!heap_.empty()) {
      const std::uint32_t j = heap_pop();
      const Symbol v = work_coef_[j];
      if (v == 0) continue;  // cancelled by an earlier elimination
      const Row* existing = by_pivot_[j].get();
      if (existing == nullptr) {
        if (pivot == unknowns_) pivot = j;
        continue;
      }
      pivot_ops.add();
      if (is_singleton(*existing)) {
        ++peel_ops_;
        obs::emit(obs::EventType::kPeel, static_cast<double>(j));
      }
      record_forward(j, v, input);
      eliminate_into_work_tracked(v, *existing);
      PRLC_ASSERT(work_coef_[j] == 0, "forward elimination left a nonzero pivot");
    }
    if (pivot == unknowns_) {
      for (const std::uint32_t j : touched_) work_coef_[j] = 0;
      touched_.clear();
      rows_redundant.add();
      return false;
    }
    std::size_t end = 0;
    for (const std::uint32_t j : touched_) {
      if (work_coef_[j] != 0 && j + 1 > end) end = j + 1;
    }
    normalize_work_touched(pivot, input);
    store_and_back_eliminate(pivot, end, input, /*from_sparse=*/true);
    rows_innovative.add();
    return true;
  }

  /// Subtract factor * source from the work row (dense-scan variant: no
  /// fill-in tracking needed, the scan visits every column up to end).
  void eliminate_into_work(Symbol factor, const Row& source) {
    if (source.dense) {
      F::axpy(std::span<Symbol>(work_coef_).subspan(source.pivot, source.end - source.pivot),
              factor, std::span<const Symbol>(source.coef));
    } else {
      for (std::size_t k = 0; k < source.idx.size(); ++k) {
        work_coef_[source.idx[k]] ^= F::mul(factor, source.val[k]);
      }
    }
    payload_axpy(factor, source);
  }

  /// Same, but pushes every column the source may have filled in onto the
  /// elimination heap (sparse/heap variant).
  void eliminate_into_work_tracked(Symbol factor, const Row& source) {
    if (source.dense) {
      F::axpy(std::span<Symbol>(work_coef_).subspan(source.pivot, source.end - source.pivot),
              factor, std::span<const Symbol>(source.coef));
      for (std::size_t j = source.pivot; j < source.end; ++j) {
        const auto col = static_cast<std::uint32_t>(j);
        if (in_heap_[col] == 0) touched_.push_back(col);
        heap_push(col);
      }
    } else {
      for (std::size_t k = 0; k < source.idx.size(); ++k) {
        const std::uint32_t col = source.idx[k];
        work_coef_[col] ^= F::mul(factor, source.val[k]);
        if (in_heap_[col] == 0) touched_.push_back(col);
        heap_push(col);
      }
    }
    payload_axpy(factor, source);
  }

  void heap_push(std::uint32_t col) {
    if (in_heap_[col] != 0) return;
    in_heap_[col] = 1;
    heap_.push_back(col);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  }

  std::uint32_t heap_pop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const std::uint32_t col = heap_.back();
    heap_.pop_back();
    in_heap_[col] = 0;
    return col;
  }

  /// Normalize the work row (dense-scan variant) so the pivot is 1.
  void normalize_work(std::size_t pivot, std::size_t end, std::uint32_t input) {
    const Symbol piv = work_coef_[pivot];
    if (piv == 1) return;
    const Symbol piv_inv = F::inv(piv);
    F::scale(std::span<Symbol>(work_coef_).subspan(pivot, end - pivot), piv_inv);
    if (payload_size_ > 0) F::scale(std::span<Symbol>(work_payload_), piv_inv);
    if (recorder_ != nullptr) {
      pending_ops_.push_back({Schedule::OpKind::kScale, piv_inv, input, input});
    }
  }

  /// Normalize the work row (sparse variant): only touched columns.
  void normalize_work_touched(std::size_t pivot, std::uint32_t input) {
    const Symbol piv = work_coef_[pivot];
    if (piv == 1) return;
    const Symbol piv_inv = F::inv(piv);
    for (const std::uint32_t j : touched_) {
      if (work_coef_[j] != 0) work_coef_[j] = F::mul(piv_inv, work_coef_[j]);
    }
    if (payload_size_ > 0) F::scale(std::span<Symbol>(work_payload_), piv_inv);
    if (recorder_ != nullptr) {
      pending_ops_.push_back({Schedule::OpKind::kScale, piv_inv, input, input});
    }
  }

  /// Build the stored row from the work buffers (consuming and re-zeroing
  /// them), commit recorder state, back-eliminate every stored row that
  /// intersects the new pivot column, and register the new row.
  void store_and_back_eliminate(std::size_t pivot, std::size_t end, std::uint32_t input,
                                bool from_sparse) {
    auto row = std::make_unique<Row>();
    row->pivot = pivot;
    row->end = end;
    std::size_t nnz = 0;
    if (!from_sparse) {
      // Dense-scan path: support is the contiguous window [pivot, end).
      for (std::size_t j = pivot; j < end; ++j) nnz += work_coef_[j] != 0 ? 1 : 0;
      if (should_store_dense(nnz, end - pivot)) {
        row->dense = true;
        row->coef.assign(work_coef_.begin() + static_cast<std::ptrdiff_t>(pivot),
                         work_coef_.begin() + static_cast<std::ptrdiff_t>(end));
      } else {
        row->idx.reserve(nnz);
        row->val.reserve(nnz);
        for (std::size_t j = pivot; j < end; ++j) {
          if (work_coef_[j] != 0) {
            row->idx.push_back(static_cast<std::uint32_t>(j));
            row->val.push_back(work_coef_[j]);
          }
        }
      }
      std::fill(work_coef_.begin() + static_cast<std::ptrdiff_t>(pivot),
                work_coef_.begin() + static_cast<std::ptrdiff_t>(end), Symbol{0});
    } else {
      std::sort(touched_.begin(), touched_.end());
      for (const std::uint32_t j : touched_) nnz += work_coef_[j] != 0 ? 1 : 0;
      if (should_store_dense(nnz, end - pivot)) {
        row->dense = true;
        row->coef.assign(work_coef_.begin() + static_cast<std::ptrdiff_t>(pivot),
                         work_coef_.begin() + static_cast<std::ptrdiff_t>(end));
      } else {
        row->idx.reserve(nnz);
        row->val.reserve(nnz);
        std::uint32_t prev = 0xffffffffu;
        for (const std::uint32_t j : touched_) {
          if (j == prev || work_coef_[j] == 0) continue;
          prev = j;
          row->idx.push_back(j);
          row->val.push_back(work_coef_[j]);
        }
      }
      for (const std::uint32_t j : touched_) work_coef_[j] = 0;
      touched_.clear();
    }
    row->payload = std::move(work_payload_);
    work_payload_.clear();
    PRLC_ASSERT(row->end > row->pivot, "stored row has an empty support window");
    PRLC_DASSERT(row_coefficient_of(*row, row->end - 1) != 0,
                 "stored row support bound is not tight");

    if (recorder_ != nullptr) {
      // Commit: this buffer now *is* pivot row `pivot`. Back-elimination
      // below records its ops directly (they are unconditional).
      recorder_->ops.insert(recorder_->ops.end(), pending_ops_.begin(), pending_ops_.end());
      recorder_->pivot_input[pivot] = input;
    }

    back_eliminate(*row);

    register_row(*row, static_cast<std::uint32_t>(pivot));
    by_pivot_[pivot] = std::move(row);
    ++rank_;
    const std::size_t prefix_before = decoded_prefix_;
    advance_prefix();
    if (decoded_prefix_ != prefix_before) {
      obs::emit(obs::EventType::kWatermarkAdvance, static_cast<double>(decoded_prefix_),
                static_cast<double>(seen_));
    }
    static obs::Gauge& watermark = obs::gauge("decoder.prefix_watermark");
    watermark.set_max(static_cast<std::int64_t>(decoded_prefix_));
  }

  Symbol row_coefficient_of(const Row& r, std::size_t col) const {
    if (col < r.pivot || col >= r.end) return 0;
    if (r.dense) return r.coef[col - r.pivot];
    const auto it = std::lower_bound(r.idx.begin(), r.idx.end(),
                                     static_cast<std::uint32_t>(col));
    if (it == r.idx.end() || *it != col) return 0;
    return r.val[static_cast<std::size_t>(it - r.idx.begin())];
  }

  /// Index a freshly stored (or densified) row so later back-eliminations
  /// can find it. Singleton rows are skipped: their only nonzero is their
  /// own pivot column, which no future row can carry after forward
  /// elimination.
  void register_row(Row& row, std::uint32_t pivot_id) {
    if (is_singleton(row)) return;
    if (row.dense) {
      register_dense_cover(row, pivot_id);
    } else {
      for (const std::uint32_t col : row.idx) {
        if (col != row.pivot) cols_[col].push_back(pivot_id);
      }
    }
  }

  void register_dense_cover(Row& row, std::uint32_t pivot_id) {
    const auto first = static_cast<std::uint32_t>(row.pivot / kCoverBlock);
    const auto last = static_cast<std::uint32_t>((row.end - 1) / kCoverBlock);
    const std::uint32_t from = std::max(first, row.cover_end_block);
    for (std::uint32_t b = from; b <= last; ++b) dense_cover_[b].push_back(pivot_id);
    if (last + 1 > row.cover_end_block) row.cover_end_block = last + 1;
  }

  /// Eliminate the new pivot column from every stored row that carries a
  /// nonzero there. Sparse targets are found through the exact column
  /// index; dense targets through the block cover. Payload updates for
  /// *all* targets — and coefficient updates for dense-on-dense — share
  /// the batched SIMD axpy when the field provides one (the PR 2 kernel
  /// path): that is the "dense residual" of the hybrid.
  void back_eliminate(Row& row) {
    static obs::Counter& back_rows = obs::counter("decoder.back_elim_rows");
    const std::size_t pivot = row.pivot;
    const std::uint32_t source =
        recorder_ != nullptr ? recorder_->pivot_input[pivot] : 0;

    // Gather targets: stored rows with a nonzero coefficient at `pivot`.
    targets_.clear();
    auto& col_entries = cols_[pivot];
    std::sort(col_entries.begin(), col_entries.end());
    std::uint32_t prev = 0xffffffffu;
    for (const std::uint32_t id : col_entries) {
      if (id == prev) continue;  // duplicate registration (re-filled column)
      prev = id;
      const Row* r = by_pivot_[id].get();
      if (r == nullptr || r->dense) continue;  // stale: densified since
      if (row_coefficient_of(*r, pivot) != 0) targets_.push_back(id);
    }
    // After this elimination every stored row is zero at `pivot`, and no
    // future merge can refill it (all sources are zero there too): the
    // column's index can be dropped for good — bounded memory, the same
    // trick the peeling decoder plays with its waiter lists.
    col_entries.clear();
    col_entries.shrink_to_fit();
    auto& cover = dense_cover_[pivot / kCoverBlock];
    std::size_t kept = 0;
    for (const std::uint32_t id : cover) {
      Row* r = by_pivot_[id].get();
      if (r == nullptr || !r->dense || is_singleton(*r)) continue;  // stale
      cover[kept++] = id;
      if (pivot >= r->pivot && pivot < r->end && r->coef[pivot - r->pivot] != 0) {
        targets_.push_back(id);
      }
    }
    cover.resize(kept);

    back_rows.add(targets_.size());
    if (targets_.empty()) return;

    batch_payload_targets_.clear();
    batch_coef_targets_.clear();
    batch_coef_factors_.clear();
    batch_factors_.clear();
    for (const std::uint32_t id : targets_) {
      Row& r = *by_pivot_[id];
      const Symbol factor = row_coefficient_of(r, pivot);
      if (recorder_ != nullptr) {
        recorder_->ops.push_back(
            {Schedule::OpKind::kAxpy, factor, recorder_->pivot_input[id], source});
      }
      if (payload_size_ > 0) batch_payload_targets_.push_back(r.payload.data());
      batch_factors_.push_back(factor);
      if (row.dense && r.dense) {
        // Dense-on-dense: grow the window now, defer the axpy to the
        // batched kernel below (one cache-tiled pass over the source).
        if (row.end > r.end) {
          r.coef.resize(row.end - r.pivot, Symbol{0});
          r.end = row.end;
          register_dense_cover(r, id);
        }
        batch_coef_targets_.push_back(r.coef.data() + (pivot - r.pivot));
        batch_coef_factors_.push_back(factor);
      } else {
        eliminate_stored(r, factor, row, id);
      }
    }
    if (!batch_coef_targets_.empty()) {
      if constexpr (gf::BatchedFieldPolicy<F>) {
        F::axpy_batch(std::span<Symbol* const>(batch_coef_targets_),
                      std::span<const Symbol>(batch_coef_factors_),
                      std::span<const Symbol>(row.coef));
      } else {
        for (std::size_t t = 0; t < batch_coef_targets_.size(); ++t) {
          F::axpy(std::span<Symbol>(batch_coef_targets_[t], row.end - pivot),
                  batch_coef_factors_[t], std::span<const Symbol>(row.coef));
        }
      }
      // Re-tighten the deferred dense-on-dense targets.
      for (const std::uint32_t id : targets_) {
        Row& r = *by_pivot_[id];
        if (row.dense && r.dense) tighten_dense(r);
      }
    }
    if (payload_size_ > 0) {
      if constexpr (gf::BatchedFieldPolicy<F>) {
        F::axpy_batch(std::span<Symbol* const>(batch_payload_targets_),
                      std::span<const Symbol>(batch_factors_),
                      std::span<const Symbol>(row.payload));
      } else {
        for (std::size_t t = 0; t < batch_payload_targets_.size(); ++t) {
          F::axpy(std::span<Symbol>(batch_payload_targets_[t], payload_size_),
                  batch_factors_[t], std::span<const Symbol>(row.payload));
        }
      }
    }
  }

  /// Re-tighten a dense row's support bound after an elimination zeroed
  /// trailing coefficients (the satellite fix for the grow-only bound the
  /// dense decoder used to keep) and drop the now-dead tail storage.
  void tighten_dense(Row& target) {
    while (target.end > target.pivot + 1 && target.coef[target.end - target.pivot - 1] == 0) {
      --target.end;
    }
    target.coef.resize(target.end - target.pivot);
    PRLC_DASSERT(target.coef[target.end - target.pivot - 1] != 0,
                 "dense row support bound is not tight");
  }

  /// target -= factor * source (coefficients only; payloads are batched by
  /// the caller). Maintains representation invariants: window growth,
  /// tight support bound, density threshold, and index registration.
  void eliminate_stored(Row& target, Symbol factor, const Row& source,
                        std::uint32_t target_id) {
    if (target.dense) {
      // Grow the window right if the source extends past it (the source's
      // pivot is inside the target's window already — it held a nonzero).
      if (source.end > target.end) {
        target.coef.resize(source.end - target.pivot, Symbol{0});
        target.end = source.end;
        register_dense_cover(target, target_id);
      }
      const std::size_t off = source.pivot - target.pivot;
      if (source.dense) {
        F::axpy(std::span<Symbol>(target.coef).subspan(off, source.end - source.pivot),
                factor, std::span<const Symbol>(source.coef));
      } else {
        for (std::size_t k = 0; k < source.idx.size(); ++k) {
          target.coef[source.idx[k] - target.pivot] ^= F::mul(factor, source.val[k]);
        }
      }
      tighten_dense(target);
      return;
    }

    // Sparse target: merge the scaled source support into the sorted
    // (idx, val) arrays, dropping cancellations and registering fill-in.
    merge_idx_.clear();
    merge_val_.clear();
    fill_cols_.clear();
    const auto emit = [&](std::uint32_t col, Symbol value) {
      if (value == 0) return;
      merge_idx_.push_back(col);
      merge_val_.push_back(value);
    };
    std::size_t a = 0;  // cursor over target.idx
    const auto source_at = [&](std::size_t k) -> std::pair<std::uint32_t, Symbol> {
      if (source.dense) {
        return {static_cast<std::uint32_t>(source.pivot + k), source.coef[k]};
      }
      return {source.idx[k], source.val[k]};
    };
    const std::size_t src_n = source.dense ? source.end - source.pivot : source.idx.size();
    std::size_t b = 0;
    while (a < target.idx.size() || b < src_n) {
      // Advance past zero slots in a dense source window.
      if (b < src_n && source_at(b).second == 0) {
        ++b;
        continue;
      }
      if (b >= src_n || (a < target.idx.size() && target.idx[a] < source_at(b).first)) {
        emit(target.idx[a], target.val[a]);
        ++a;
      } else if (a >= target.idx.size() || source_at(b).first < target.idx[a]) {
        // Fill-in: a column the target did not carry before. The product
        // of two nonzero field elements is nonzero, so this always lands.
        const auto [col, sval] = source_at(b);
        emit(col, F::mul(factor, sval));
        fill_cols_.push_back(col);
        ++b;
      } else {
        const auto [col, sval] = source_at(b);
        emit(col, static_cast<Symbol>(target.val[a] ^ F::mul(factor, sval)));
        ++a;
        ++b;
      }
    }
    target.idx.swap(merge_idx_);
    target.val.swap(merge_val_);
    target.end = target.idx.empty() ? target.pivot + 1 : target.idx.back() + 1;
    PRLC_ASSERT(!target.idx.empty() && target.idx.front() == target.pivot,
                "sparse row lost its pivot during elimination");
    if (should_store_dense(target.idx.size(), target.end - target.pivot)) {
      densify(target, target_id);
      return;
    }
    for (const std::uint32_t col : fill_cols_) cols_[col].push_back(target_id);
  }

  void densify(Row& target, std::uint32_t target_id) {
    ++densifications_;
    static obs::Counter& densified = obs::counter("decoder.rows_densified");
    densified.add();
    obs::emit(obs::EventType::kRowDensified, static_cast<double>(target.pivot),
              static_cast<double>(target.end - target.pivot));
    target.dense = true;
    target.coef.assign(target.end - target.pivot, Symbol{0});
    for (std::size_t k = 0; k < target.idx.size(); ++k) {
      target.coef[target.idx[k] - target.pivot] = target.val[k];
    }
    target.idx.clear();
    target.idx.shrink_to_fit();
    target.val.clear();
    target.val.shrink_to_fit();
    // Old cols_ entries go stale and are dropped lazily; the cover index
    // takes over.
    register_dense_cover(target, target_id);
  }

  void advance_prefix() {
    while (decoded_prefix_ < unknowns_) {
      const Row* r = by_pivot_[decoded_prefix_].get();
      if (r == nullptr || !is_singleton(*r)) break;
      ++decoded_prefix_;
    }
  }

  std::size_t unknowns_;
  std::size_t payload_size_;
  std::vector<std::unique_ptr<Row>> by_pivot_;
  /// Exact column -> sparse-row index (pivot ids); entries may be stale
  /// (cancelled or densified rows) and are dropped lazily.
  std::vector<std::vector<std::uint32_t>> cols_;
  /// Coarse block -> dense-row cover index (pivot ids), kCoverBlock wide.
  std::vector<std::vector<std::uint32_t>> dense_cover_;
  std::size_t rank_ = 0;
  std::size_t seen_ = 0;
  std::size_t decoded_prefix_ = 0;
  std::size_t peel_ops_ = 0;
  std::size_t densifications_ = 0;
  /// Full-width scratch row, all-zero between add() calls.
  std::vector<Symbol> work_coef_;
  std::vector<Symbol> work_payload_;
  // Sparse-path scratch: pending-column min-heap + membership flags, the
  // list of columns ever touched, and gathered input indices/values.
  std::vector<std::uint32_t> heap_;
  std::vector<std::uint8_t> in_heap_;
  std::vector<std::uint32_t> touched_;
  std::vector<std::uint32_t> in_idx_;
  std::vector<Symbol> in_val_;
  // Back-elimination scratch (reused across add() calls).
  std::vector<std::uint32_t> targets_;
  std::vector<Symbol*> batch_payload_targets_;
  std::vector<Symbol> batch_factors_;
  std::vector<Symbol*> batch_coef_targets_;
  std::vector<Symbol> batch_coef_factors_;
  std::vector<std::uint32_t> merge_idx_;
  std::vector<Symbol> merge_val_;
  std::vector<std::uint32_t> fill_cols_;
  // Schedule recording (see set_schedule_recorder); pending_ops_ holds the
  // current equation's forward-elimination ops until it proves innovative.
  Schedule* recorder_ = nullptr;
  std::vector<typename Schedule::Op> pending_ops_;
};

}  // namespace prlc::linalg
