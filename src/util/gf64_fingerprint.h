// Homomorphic block fingerprints over GF(2^64).
//
// A payload is read as a polynomial over GF(2^64) — one field element per
// byte, through the embedding below — and evaluated at a secret point r
// (Rabin fingerprinting, but over a binary field so that the algebra of
// the codes carries through). Two properties make this the right
// integrity primitive for random linear codes:
//
//   * Linearity under coding. GF(2^8) embeds in GF(2^64) (8 divides 64):
//     fix a root alpha of the code's own modulus x^8+x^4+x^3+x^2+1
//     (gf::Gf256's 0x11D) inside GF(2^64); then byte -> sum of alpha^i
//     over its set bits is a FIELD homomorphism, so for equal-length
//     payloads   fp(sum_j gamma_j * s_j) = sum_j embed(gamma_j) * fp(s_j).
//     Any coded block is verifiable against the SOURCE-block fingerprint
//     manifest — per block, with no decoding and no leave-one-out search.
//
//   * Schwartz–Zippel soundness. Distinct equal-length payloads agree at
//     a random r with probability <= (L-1)/2^64 for L-byte payloads: a
//     forged frame (bit rot behind a recomputed CRC, a Byzantine node
//     serving payload inconsistent with its claimed coefficients) slips
//     through with probability ~2^-50 even at 16 KiB blocks.
//
// GF(2^64) is GF(2)[x]/(x^64+x^4+x^3+x+1). The per-byte hot path is
// byte-sliced: multiplication by the fixed point r is 8 table lookups
// (16 KiB of tables), built once per Fingerprinter.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace prlc::util {

/// Reference carry-less multiply-and-reduce in GF(2^64). Slow (bitwise);
/// table construction and tests only — the fingerprint path never calls it
/// per byte.
std::uint64_t gf64_mul(std::uint64_t a, std::uint64_t b);

/// a^e in GF(2^64) by square-and-multiply.
std::uint64_t gf64_pow(std::uint64_t a, std::uint64_t e);

/// The field embedding GF(2^8) -> GF(2^64): evaluation of the byte's
/// polynomial at a root of 0x11D. embed(a*b) = embed(a)*embed(b) and
/// embed(a^b) = embed(a)^embed(b) (GF(2^8) products per gf::Gf256).
/// embed(0) = 0, embed(1) = 1. The root is found once at startup.
std::uint64_t gf64_embed(std::uint8_t value);

/// Seeded fingerprinting context: derives a nonzero evaluation point from
/// `seed` and precomputes the multiply-by-point tables. The same seed
/// always yields the same point — a manifest records its seed so any
/// collector can re-derive the verifier.
class Fingerprinter {
 public:
  explicit Fingerprinter(std::uint64_t seed);

  std::uint64_t seed() const { return seed_; }
  std::uint64_t point() const { return point_; }

  /// Horner evaluation: fp = sum_i embed(payload[i]) * r^(L-1-i).
  /// Linear in the payload for a fixed length L; fp(empty) = 0.
  std::uint64_t fingerprint(std::span<const std::uint8_t> payload) const;

  /// Predicted fingerprint of a coded block: sum_j embed(coeffs[j]) *
  /// fingerprints[j]. Equals fingerprint(coded payload) whenever the
  /// payload really is that linear combination of the source blocks.
  std::uint64_t combine(std::span<const std::uint8_t> coeffs,
                        std::span<const std::uint64_t> fingerprints) const;

  /// Support-only combine for sparse coefficient vectors:
  /// sum_k embed(values[k]) * fingerprints[indices[k]].
  std::uint64_t combine_sparse(std::span<const std::uint32_t> indices,
                               std::span<const std::uint8_t> values,
                               std::span<const std::uint64_t> fingerprints) const;

 private:
  /// acc * point_ via the byte-sliced tables.
  std::uint64_t mul_point(std::uint64_t acc) const;

  std::uint64_t seed_ = 0;
  std::uint64_t point_ = 0;
  /// table_[k][b] = (b << 8k) * point_ in GF(2^64).
  std::array<std::array<std::uint64_t, 256>, 8> table_{};
};

/// The per-source-block fingerprint manifest a collection verifies
/// against. Computed by whoever holds the source data (the disseminating
/// node), shipped beside the coded blocks (codes/wire_format.h gives it a
/// CRC-framed wire encoding), and valid for any number of coded blocks.
struct FingerprintManifest {
  std::uint64_t seed = 0;                     ///< Fingerprinter seed
  std::size_t block_size = 0;                 ///< payload bytes per block
  std::vector<std::uint64_t> fingerprints;    ///< one per source block

  bool operator==(const FingerprintManifest&) const = default;
};

/// Fingerprint every `block_size`-byte block of `source` (laid out
/// back-to-back, as codes::SourceData stores them).
FingerprintManifest build_manifest(std::uint64_t seed,
                                   std::span<const std::uint8_t> source,
                                   std::size_t block_size);

}  // namespace prlc::util
