#include "util/table_printer.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/check.h"

namespace prlc {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  PRLC_REQUIRE(!header_.empty(), "table header must not be empty");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  PRLC_REQUIRE(row.size() == header_.size(), "row width must match the header");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    os << "-+\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TablePrinter::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::optional<std::string> TablePrinter::emit(const std::string& name) const {
  std::cout << to_text() << std::flush;
  const char* dir = std::getenv("PRLC_BENCH_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: could not open " << path << " for CSV output\n";
    return std::nullopt;
  }
  out << to_csv();
  return path;
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_mean_ci(double mean, double ci, int precision) {
  return fmt_double(mean, precision) + " ± " + fmt_double(ci, precision);
}

}  // namespace prlc
