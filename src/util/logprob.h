// Numerically stable combinatorial probability primitives.
//
// The analysis engine (Sec. 3.3 of the paper) works with multinomial tail
// probabilities at block counts in the thousands; naive factorials overflow
// long before that. Everything here is computed in log space from a cached
// log-factorial table.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/check.h"

namespace prlc {

/// Cached table of ln(k!) for k = 0..n_max, growable on demand.
/// Lookup is O(1); growth amortizes. Not thread-safe by design: analysis
/// code owns its own table (C++CG CP.2 — keep sharing explicit).
class LogFactorialTable {
 public:
  explicit LogFactorialTable(std::size_t n_max = 1024) { grow(n_max); }

  /// ln(k!), extending the table as needed.
  double operator()(std::size_t k) {
    if (k >= table_.size()) grow(k);
    return table_[k];
  }

  /// ln C(n, k); -inf when k > n.
  double log_binomial(std::size_t n, std::size_t k);

  /// Binomial pmf Pr(Bin(n, p) = k); exact 0/1 edge cases handled.
  double binomial_pmf(std::size_t n, double p, std::size_t k);

  /// Upper-tail Pr(Bin(n, p) >= k).
  double binomial_tail_ge(std::size_t n, double p, std::size_t k);

  /// Poisson pmf Pr(Pois(mu) = k).
  double poisson_pmf(double mu, std::size_t k);

 private:
  void grow(std::size_t n_max);
  std::vector<double> table_;
};

/// ln(a + b) given ln(a) and ln(b); handles -inf operands.
double log_add(double log_a, double log_b);

/// Normalize `weights` in place so they sum to 1. Requires a positive sum.
void normalize(std::span<double> weights);

}  // namespace prlc
