#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace prlc::json {

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

bool Value::as_bool() const {
  PRLC_REQUIRE(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Value::as_double() const {
  PRLC_REQUIRE(is_number(), "JSON value is not a number");
  return num_;
}

const std::string& Value::as_string() const {
  PRLC_REQUIRE(is_string(), "JSON value is not a string");
  return str_;
}

void Value::push_back(Value v) {
  if (is_null()) kind_ = Kind::kArray;
  PRLC_REQUIRE(is_array(), "push_back on a non-array JSON value");
  arr_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  PRLC_REQUIRE(false, "size() on a non-container JSON value");
  return 0;
}

const Value& Value::at(std::size_t i) const {
  PRLC_REQUIRE(is_array(), "indexed access on a non-array JSON value");
  PRLC_REQUIRE(i < arr_.size(), "JSON array index out of range");
  return arr_[i];
}

void Value::set(std::string_view key, Value v) {
  if (is_null()) kind_ = Kind::kObject;
  PRLC_REQUIRE(is_object(), "set() on a non-object JSON value");
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
}

bool Value::contains(std::string_view key) const { return find(key) != nullptr; }

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  PRLC_REQUIRE(v != nullptr, "JSON object has no member '" + std::string(key) + "'");
  return *v;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  PRLC_REQUIRE(is_object(), "members() on a non-object JSON value");
  return obj_;
}

namespace {

/// Length of the well-formed UTF-8 sequence starting at s[i], or 0 when
/// the bytes there are not valid UTF-8 (RFC 3629 table: no overlong
/// forms, no surrogate code points, nothing above U+10FFFF).
std::size_t utf8_sequence_length(std::string_view s, std::size_t i) {
  const auto b0 = static_cast<unsigned char>(s[i]);
  if (b0 < 0x80) return 1;
  const auto cont = [&](std::size_t k, unsigned char lo, unsigned char hi) {
    if (i + k >= s.size()) return false;
    const auto b = static_cast<unsigned char>(s[i + k]);
    return b >= lo && b <= hi;
  };
  if (b0 >= 0xC2 && b0 <= 0xDF) return cont(1, 0x80, 0xBF) ? 2 : 0;
  if (b0 == 0xE0) return cont(1, 0xA0, 0xBF) && cont(2, 0x80, 0xBF) ? 3 : 0;
  if (b0 >= 0xE1 && b0 <= 0xEC) return cont(1, 0x80, 0xBF) && cont(2, 0x80, 0xBF) ? 3 : 0;
  if (b0 == 0xED) return cont(1, 0x80, 0x9F) && cont(2, 0x80, 0xBF) ? 3 : 0;  // no surrogates
  if (b0 >= 0xEE && b0 <= 0xEF) return cont(1, 0x80, 0xBF) && cont(2, 0x80, 0xBF) ? 3 : 0;
  if (b0 == 0xF0) {
    return cont(1, 0x90, 0xBF) && cont(2, 0x80, 0xBF) && cont(3, 0x80, 0xBF) ? 4 : 0;
  }
  if (b0 >= 0xF1 && b0 <= 0xF3) {
    return cont(1, 0x80, 0xBF) && cont(2, 0x80, 0xBF) && cont(3, 0x80, 0xBF) ? 4 : 0;
  }
  if (b0 == 0xF4) {  // max U+10FFFF
    return cont(1, 0x80, 0x8F) && cont(2, 0x80, 0xBF) && cont(3, 0x80, 0xBF) ? 4 : 0;
  }
  return 0;  // C0/C1 (overlong), F5+ (out of range), stray continuation
}

}  // namespace

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  std::size_t i = 0;
  while (i < s.size()) {
    const auto c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        out += "\\\"";
        ++i;
        continue;
      case '\\':
        out += "\\\\";
        ++i;
        continue;
      case '\n':
        out += "\\n";
        ++i;
        continue;
      case '\r':
        out += "\\r";
        ++i;
        continue;
      case '\t':
        out += "\\t";
        ++i;
        continue;
      default:
        break;
    }
    if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      ++i;
      continue;
    }
    if (c < 0x80) {
      out.push_back(static_cast<char>(c));
      ++i;
      continue;
    }
    // Multi-byte lead or continuation: copy only well-formed UTF-8 —
    // hierarchical metric/event names are arbitrary caller strings, and
    // one invalid byte must not poison a whole JSONL export. Invalid
    // bytes become U+FFFD one at a time, resynchronizing on the next.
    const std::size_t len = utf8_sequence_length(s, i);
    if (len == 0) {
      out += "\xEF\xBF\xBD";  // U+FFFD replacement character
      ++i;
    } else {
      out.append(s.substr(i, len));
      i += len;
    }
  }
  out.push_back('"');
  return out;
}

namespace {

/// Shortest round-trip-ish number formatting: integers without a decimal
/// point, everything else with enough digits to reconstruct the double.
void append_number(std::string& out, double d) {
  PRLC_REQUIRE(std::isfinite(d), "JSON cannot represent NaN or infinity");
  if (d == static_cast<double>(static_cast<long long>(d)) && std::fabs(d) < 1e15) {
    out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void append_indent(std::string& out, int indent, int depth) {
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      append_number(out, num_);
      return;
    case Kind::kString:
      out += escape(str_);
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (indent >= 0) append_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (indent >= 0) append_indent(out, indent, depth + 1);
        out += escape(obj_[i].first);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    PRLC_REQUIRE(pos_ == text_.size(),
                 "trailing characters after JSON document at offset " + std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    PRLC_REQUIRE(false, what + " at offset " + std::to_string(pos_));
    __builtin_unreachable();
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("malformed literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("malformed literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("malformed literal");
        return Value(nullptr);
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      Value v = parse_value();
      PRLC_REQUIRE(!out.contains(key),
                   "duplicate JSON object key '" + key + "' at offset " + std::to_string(pos_));
      out.set(key, std::move(v));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        // RFC 8259: control characters must be escaped; a raw one means
        // the document did not come from a conforming writer.
        if (static_cast<unsigned char>(c) < 0x20) {
          --pos_;
          fail("raw control character in string");
        }
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // the writer never emits them and trace names are ASCII).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // RFC 8259 forbids leading zeros ("01") and a bare "-"/".5"; strtod
    // would happily accept some of those, so check the prefix here.
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("expected a JSON value");
    }
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      fail("leading zeros are not valid JSON numbers");
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number '" + token + "'");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PRLC_REQUIRE(static_cast<bool>(in), "cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  PRLC_REQUIRE(!in.bad(), "read failure on '" + path + "'");
  return std::move(buf).str();
}

void write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  PRLC_REQUIRE(static_cast<bool>(out), "cannot open '" + path + "' for writing");
  out << content;
  if (!content.ends_with('\n')) out << '\n';
  PRLC_REQUIRE(static_cast<bool>(out), "write failure on '" + path + "'");
}

}  // namespace prlc::json
