#include "util/logprob.h"

#include <cmath>
#include <limits>

namespace prlc {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

void LogFactorialTable::grow(std::size_t n_max) {
  std::size_t old = table_.size();
  if (old == 0) {
    table_.push_back(0.0);  // ln(0!) = 0
    old = 1;
  }
  if (n_max + 1 <= old) return;
  table_.resize(n_max + 1);
  for (std::size_t k = old; k <= n_max; ++k) {
    table_[k] = table_[k - 1] + std::log(static_cast<double>(k));
  }
}

double LogFactorialTable::log_binomial(std::size_t n, std::size_t k) {
  if (k > n) return kNegInf;
  return (*this)(n) - (*this)(k) - (*this)(n - k);
}

double LogFactorialTable::binomial_pmf(std::size_t n, double p, std::size_t k) {
  PRLC_REQUIRE(p >= 0.0 && p <= 1.0, "binomial probability must be in [0,1]");
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial(n, k) + static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double LogFactorialTable::binomial_tail_ge(std::size_t n, double p, std::size_t k) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  // Sum the smaller side for accuracy.
  double tail = 0.0;
  if (k > n / 2) {
    for (std::size_t j = k; j <= n; ++j) tail += binomial_pmf(n, p, j);
  } else {
    double head = 0.0;
    for (std::size_t j = 0; j < k; ++j) head += binomial_pmf(n, p, j);
    tail = 1.0 - head;
  }
  if (tail < 0.0) tail = 0.0;
  if (tail > 1.0) tail = 1.0;
  return tail;
}

double LogFactorialTable::poisson_pmf(double mu, std::size_t k) {
  PRLC_REQUIRE(mu >= 0.0, "Poisson mean must be nonnegative");
  if (mu == 0.0) return k == 0 ? 1.0 : 0.0;
  const double log_pmf =
      static_cast<double>(k) * std::log(mu) - mu - (*this)(k);
  return std::exp(log_pmf);
}

double log_add(double log_a, double log_b) {
  if (log_a == kNegInf) return log_b;
  if (log_b == kNegInf) return log_a;
  if (log_a < log_b) std::swap(log_a, log_b);
  return log_a + std::log1p(std::exp(log_b - log_a));
}

void normalize(std::span<double> weights) {
  double total = 0.0;
  for (double w : weights) {
    PRLC_REQUIRE(w >= 0.0, "normalize() requires nonnegative weights");
    total += w;
  }
  PRLC_REQUIRE(total > 0.0, "normalize() requires a positive sum");
  for (double& w : weights) w /= total;
}

}  // namespace prlc
