// Minimal JSON tree: build, serialize, parse.
//
// The observability layer (metrics export, trace files, machine-readable
// bench results) needs structured output that downstream tooling can
// trust, and the smoke tests need to *validate* that output — so this is
// a two-way implementation: a small value tree with a writer, plus a
// strict recursive-descent parser. Deliberately tiny (no SAX, no
// streaming, no non-standard extensions); documents here are megabytes at
// most. Object keys keep insertion order so emitted files are stable and
// diffable across runs.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prlc::json {

/// One JSON value: null, bool, number, string, array, or object.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), num_(d) {}
  Value(int i) : kind_(Kind::kNumber), num_(i) {}
  Value(std::int64_t i) : kind_(Kind::kNumber), num_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Value(std::string_view s) : kind_(Kind::kString), str_(s) {}

  /// Empty array / object factories (an empty {} initializer is ambiguous).
  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw PreconditionError on a kind mismatch.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Array access. push_back requires an array (or null, which becomes one).
  void push_back(Value v);
  std::size_t size() const;  ///< element count (array) or member count (object)
  const Value& at(std::size_t i) const;

  /// Object access. set() requires an object (or null, which becomes one);
  /// setting an existing key overwrites in place, keeping its position.
  void set(std::string_view key, Value v);
  bool contains(std::string_view key) const;
  /// Member lookup; throws PreconditionError when absent.
  const Value& at(std::string_view key) const;
  /// Member lookup; nullptr when absent.
  const Value* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Serialize. indent < 0 → compact single line; otherwise pretty-print
  /// with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document (trailing garbage rejected);
  /// throws PreconditionError with an offset on malformed input.
  static Value parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Escape a string per RFC 8259 (quotes included).
std::string escape(std::string_view s);

/// Whole-file helpers for the JSON producers/consumers (metrics export,
/// bench --json, prlc_json_check). Throw PreconditionError on I/O failure.
std::string read_file(const std::string& path);
void write_file(const std::string& path, std::string_view content);

}  // namespace prlc::json
