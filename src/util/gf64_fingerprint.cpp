#include "util/gf64_fingerprint.h"

#include "util/check.h"
#include "util/random.h"

namespace prlc::util {

namespace {

// x^64 = x^4 + x^3 + x + 1 over GF(2). Folding the high word multiplies
// it by this low-degree remainder; the product reaches at most bit 67, so
// one second fold of those four bits finishes the reduction.
inline unsigned __int128 fold(std::uint64_t hi) {
  const auto h = static_cast<unsigned __int128>(hi);
  return (h << 4) ^ (h << 3) ^ (h << 1) ^ h;
}

}  // namespace

std::uint64_t gf64_mul(std::uint64_t a, std::uint64_t b) {
  unsigned __int128 acc = 0;
  unsigned __int128 shifted = a;
  while (b != 0) {
    if (b & 1) acc ^= shifted;
    shifted <<= 1;
    b >>= 1;
  }
  std::uint64_t lo = static_cast<std::uint64_t>(acc);
  const unsigned __int128 first = fold(static_cast<std::uint64_t>(acc >> 64));
  lo ^= static_cast<std::uint64_t>(first);
  lo ^= static_cast<std::uint64_t>(fold(static_cast<std::uint64_t>(first >> 64)));
  return lo;
}

std::uint64_t gf64_pow(std::uint64_t a, std::uint64_t e) {
  std::uint64_t result = 1;
  std::uint64_t base = a;
  while (e != 0) {
    if (e & 1) result = gf64_mul(result, base);
    base = gf64_mul(base, base);
    e >>= 1;
  }
  return result;
}

namespace {

/// p(b) for the GF(2^8) modulus 0x11D = x^8 + x^4 + x^3 + x^2 + 1,
/// evaluated in GF(2^64).
std::uint64_t eval_gf256_modulus(std::uint64_t b) {
  const std::uint64_t b2 = gf64_mul(b, b);
  const std::uint64_t b3 = gf64_mul(b2, b);
  const std::uint64_t b4 = gf64_mul(b2, b2);
  const std::uint64_t b8 = gf64_mul(b4, b4);
  return b8 ^ b4 ^ b3 ^ b2 ^ 1;
}

/// A root of 0x11D inside GF(2^64). Roots of a degree-8 GF(2)-irreducible
/// polynomial live in the unique copy of GF(2^8), i.e. the order-255
/// multiplicative subgroup. Project a candidate onto that subgroup with
/// the exact cofactor (2^64-1)/255 = 0x0101010101010101, then scan its
/// powers; if the candidate landed in a proper subgroup (u's order
/// divides 255 strictly), try the next one.
std::uint64_t find_embed_root() {
  constexpr std::uint64_t kCofactor = 0x0101010101010101ULL;
  for (std::uint64_t t = 2; t < 64; ++t) {
    const std::uint64_t u = gf64_pow(t, kCofactor);
    if (u == 1) continue;
    std::uint64_t b = u;
    for (int k = 1; k < 255; ++k) {
      if (eval_gf256_modulus(b) == 0) return b;
      b = gf64_mul(b, u);
    }
  }
  PRLC_ASSERT(false, "no GF(2^8) root found in GF(2^64)");
}

const std::array<std::uint64_t, 256>& embed_table() {
  static const std::array<std::uint64_t, 256> table = [] {
    const std::uint64_t alpha = find_embed_root();
    std::array<std::uint64_t, 8> alpha_pow;
    alpha_pow[0] = 1;
    for (std::size_t i = 1; i < 8; ++i) alpha_pow[i] = gf64_mul(alpha_pow[i - 1], alpha);
    std::array<std::uint64_t, 256> out{};
    for (std::size_t v = 0; v < 256; ++v) {
      std::uint64_t e = 0;
      for (std::size_t i = 0; i < 8; ++i) {
        if (v & (std::size_t{1} << i)) e ^= alpha_pow[i];
      }
      out[v] = e;
    }
    return out;
  }();
  return table;
}

}  // namespace

std::uint64_t gf64_embed(std::uint8_t value) { return embed_table()[value]; }

Fingerprinter::Fingerprinter(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  do {
    point_ = splitmix64_next(sm);
  } while (point_ == 0);
  for (std::size_t k = 0; k < 8; ++k) {
    for (std::size_t b = 0; b < 256; ++b) {
      table_[k][b] = gf64_mul(static_cast<std::uint64_t>(b) << (8 * k), point_);
    }
  }
  (void)embed_table();  // force the one-time root search off the hot path
}

std::uint64_t Fingerprinter::mul_point(std::uint64_t acc) const {
  std::uint64_t out = 0;
  for (std::size_t k = 0; k < 8; ++k) {
    out ^= table_[k][(acc >> (8 * k)) & 0xff];
  }
  return out;
}

std::uint64_t Fingerprinter::fingerprint(std::span<const std::uint8_t> payload) const {
  const std::array<std::uint64_t, 256>& embed = embed_table();
  std::uint64_t acc = 0;
  for (const std::uint8_t byte : payload) {
    acc = mul_point(acc) ^ embed[byte];
  }
  return acc;
}

std::uint64_t Fingerprinter::combine(std::span<const std::uint8_t> coeffs,
                                     std::span<const std::uint64_t> fingerprints) const {
  PRLC_REQUIRE(coeffs.size() == fingerprints.size(),
               "combine needs one fingerprint per coefficient");
  std::uint64_t acc = 0;
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    if (coeffs[j] == 0) continue;
    acc ^= gf64_mul(gf64_embed(coeffs[j]), fingerprints[j]);
  }
  return acc;
}

std::uint64_t Fingerprinter::combine_sparse(
    std::span<const std::uint32_t> indices, std::span<const std::uint8_t> values,
    std::span<const std::uint64_t> fingerprints) const {
  PRLC_REQUIRE(indices.size() == values.size(),
               "sparse combine needs matching index/value spans");
  std::uint64_t acc = 0;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    PRLC_REQUIRE(indices[k] < fingerprints.size(), "sparse index outside the manifest");
    if (values[k] == 0) continue;
    acc ^= gf64_mul(gf64_embed(values[k]), fingerprints[indices[k]]);
  }
  return acc;
}

FingerprintManifest build_manifest(std::uint64_t seed,
                                   std::span<const std::uint8_t> source,
                                   std::size_t block_size) {
  PRLC_REQUIRE(block_size > 0, "manifest block size must be positive");
  PRLC_REQUIRE(source.size() % block_size == 0,
               "source bytes must be a whole number of blocks");
  const Fingerprinter fp(seed);
  FingerprintManifest manifest;
  manifest.seed = seed;
  manifest.block_size = block_size;
  manifest.fingerprints.reserve(source.size() / block_size);
  for (std::size_t off = 0; off < source.size(); off += block_size) {
    manifest.fingerprints.push_back(fp.fingerprint(source.subspan(off, block_size)));
  }
  return manifest;
}

}  // namespace prlc::util
