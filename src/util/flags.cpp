#include "util/flags.h"

#include <cstdlib>
#include <sstream>

namespace prlc {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    PRLC_REQUIRE(!body.empty(), "bare '--' is not a valid flag");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" form; a following token starting with "--" means the
    // flag was boolean-style ("--verbose").
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

std::string Flags::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  PRLC_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" + name + " expects an integer, got '" + it->second + "'");
  return v;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  PRLC_REQUIRE(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" + name + " expects a number, got '" + it->second + "'");
  return v;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  PRLC_REQUIRE(false, "flag --" + name + " expects a boolean, got '" + v + "'");
}

std::vector<double> Flags::get_double_list(const std::string& name,
                                           std::vector<double> fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    PRLC_REQUIRE(end != nullptr && *end == '\0' && !item.empty(),
                 "flag --" + name + " has a non-numeric element '" + item + "'");
    out.push_back(v);
  }
  PRLC_REQUIRE(!out.empty(), "flag --" + name + " expects a nonempty list");
  return out;
}

std::vector<std::size_t> Flags::get_size_list(const std::string& name,
                                              std::vector<std::size_t> fallback) const {
  const auto doubles = get_double_list(
      name, std::vector<double>(fallback.begin(), fallback.end()));
  std::vector<std::size_t> out;
  for (double v : doubles) {
    PRLC_REQUIRE(v >= 0 && v == static_cast<double>(static_cast<std::size_t>(v)),
                 "flag --" + name + " expects nonnegative integers");
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!read_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace prlc
