// Deterministic, fast pseudo-random number generation for simulations.
//
// All stochastic components of the library (encoders, network simulators,
// Monte-Carlo analysis) draw from prlc::Rng so that every experiment is
// reproducible from a single 64-bit seed. The generator is xoshiro256**,
// seeded through SplitMix64 per the reference implementation; it is far
// faster than std::mt19937_64 and has no observed statistical defects for
// this workload class.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace prlc {

/// SplitMix64 step — used for seeding and as a tiny standalone mixer.
/// Advances `state` and returns the mixed output.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed; equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the stream from `seed`.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound) {
    PRLC_REQUIRE(bound > 0, "uniform bound must be positive");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    PRLC_REQUIRE(lo <= hi, "uniform_range requires lo <= hi");
    const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform(width));
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform_double() < p; }

  /// Sample an index from a discrete distribution given by `weights`
  /// (nonnegative, not all zero). O(n) inverse-CDF walk — fine for the
  /// small level counts this library deals with; use AliasTable for bulk.
  std::size_t discrete(std::span<const double> weights) {
    PRLC_REQUIRE(!weights.empty(), "discrete() needs at least one weight");
    double total = 0;
    for (double w : weights) {
      PRLC_REQUIRE(w >= 0.0, "discrete() weights must be nonnegative");
      total += w;
    }
    PRLC_REQUIRE(total > 0.0, "discrete() weights must not all be zero");
    double r = uniform_double() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher–Yates shuffle of a contiguous range.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = uniform(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Sample `k` distinct indices uniformly from [0, n) (unsorted).
  /// Floyd's algorithm: O(k) expected work, no O(n) scratch.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Spawn an independent child generator; deterministic given the parent
  /// state. Used to give each Monte-Carlo trial its own stream.
  Rng split() {
    Rng child(0);
    std::uint64_t sm = (*this)();
    for (auto& word : child.state_) word = splitmix64_next(sm);
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Alias-method sampler for repeated draws from one discrete distribution.
/// Construction O(n); each draw O(1). Used for sampling coded-block levels
/// from a priority distribution millions of times.
class AliasTable {
 public:
  /// `weights` must be nonnegative with a positive sum.
  explicit AliasTable(std::span<const double> weights);

  /// Number of categories.
  std::size_t size() const { return prob_.size(); }

  /// Draw one category index.
  std::size_t sample(Rng& rng) const {
    const std::size_t i = rng.uniform(prob_.size());
    return rng.uniform_double() < prob_[i] ? i : alias_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<std::size_t> alias_;
};

}  // namespace prlc
