#include "util/stats.h"

#include <algorithm>

namespace prlc {

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::span<const double> sample, double q) {
  PRLC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  // NaNs have no order; sorting them in would poison the interpolation
  // (std::sort with NaN comparisons is undefined), so drop them first.
  std::vector<double> sorted;
  sorted.reserve(sample.size());
  for (double x : sample) {
    if (!std::isnan(x)) sorted.push_back(x);
  }
  PRLC_REQUIRE(!sorted.empty(), "quantile of a sample with no non-NaN values");
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  PRLC_REQUIRE(hi > lo, "Histogram range must be nonempty");
  PRLC_REQUIRE(bins > 0, "Histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (std::isnan(x)) {
    ++nan_;
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // numeric edge
  ++counts_[idx];
}

std::size_t Histogram::bin_count(std::size_t i) const {
  PRLC_REQUIRE(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  PRLC_REQUIRE(i < counts_.size(), "histogram bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

}  // namespace prlc
