// Minimal command-line flag parsing for the CLI tools.
//
// Supports `--name value` and `--name=value` long flags plus positional
// arguments; typed accessors with defaults and validation. No external
// dependencies, deliberately tiny — the CLI surface is a handful of
// numeric knobs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/check.h"

namespace prlc {

class Flags {
 public:
  /// Parse argv (excluding argv[0]); throws PreconditionError on a
  /// malformed flag (missing value, unknown syntax).
  static Flags parse(int argc, const char* const* argv);

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  /// Typed lookups with defaults. Throws on unparsable values.
  std::string get_string(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of doubles (e.g. "--dist 0.5,0.3,0.2").
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> fallback) const;

  /// Comma-separated list of nonnegative integers.
  std::vector<std::size_t> get_size_list(const std::string& name,
                                         std::vector<std::size_t> fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were provided but never read — typo detection for mains.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace prlc
