// Streaming statistics and confidence intervals for experiment outputs.
//
// Every data point in the paper's figures is "the average and the 95%
// confidence intervals from 100 independent experiments"; RunningStats
// provides exactly that (Welford accumulation, normal-approximation CI).
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "util/check.h"

namespace prlc {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Add one observation.
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  /// Sample mean; 0 when empty.
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Standard error of the mean; 0 when empty.
  double stderr_mean() const {
    return count_ > 0 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
  }
  /// Half-width of the 95% confidence interval for the mean
  /// (normal approximation, z = 1.96 — matches the paper's methodology).
  double ci95_halfwidth() const { return 1.96 * stderr_mean(); }
  /// Extremes; precondition error when empty (there is no observation to
  /// report, and silently returning 0 corrupted min/max-of-load plots).
  double min() const {
    PRLC_REQUIRE(count_ > 0, "min() of an empty RunningStats");
    return min_;
  }
  double max() const {
    PRLC_REQUIRE(count_ > 0, "max() of an empty RunningStats");
    return max_;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample (linear interpolation between order
/// statistics). `q` in [0,1]. NaN entries are ignored; the sample must
/// contain at least one non-NaN value. Copies and sorts: O(n log n).
double quantile(std::span<const double> sample, double q);

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus
/// out-of-range counters; used for load-balance experiments.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// NaN samples count toward total() and nan() but land in no bin —
  /// casting NaN to an index is undefined behavior, and dropping the
  /// sample silently would skew total()-normalized frequencies.
  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t nan() const { return nan_; }
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t nan_ = 0;
  std::size_t total_ = 0;
};

}  // namespace prlc
