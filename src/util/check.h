// Lightweight precondition / invariant checking for the PRLC library.
//
// The library reports contract violations by throwing std::logic_error
// subclasses (C++ Core Guidelines I.6/E.x: express preconditions and use
// exceptions for error handling). Checks are always on: the cost is
// negligible next to the linear-algebra work this library performs, and
// silent corruption of a decoding matrix is far worse than a branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace prlc {

/// Thrown when a function argument violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant is violated (library bug, not misuse).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file, int line,
                                            const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file, int line,
                                         const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace prlc

/// Validate a caller-supplied argument; throws prlc::PreconditionError.
#define PRLC_REQUIRE(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::prlc::detail::throw_precondition(#expr, __FILE__, __LINE__, msg);  \
    }                                                                      \
  } while (0)

/// Validate an internal invariant; throws prlc::InvariantError.
#define PRLC_ASSERT(expr, msg)                                          \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::prlc::detail::throw_invariant(#expr, __FILE__, __LINE__, msg);  \
    }                                                                   \
  } while (0)

/// Debug-build-only invariant (compiled out under NDEBUG). For checks on
/// hot paths whose cost is *not* negligible next to the surrounding work —
/// e.g. per-elimination support-bound tightness in the sparse decoder.
#ifdef NDEBUG
#define PRLC_DASSERT(expr, msg) \
  do {                          \
  } while (0)
#else
#define PRLC_DASSERT(expr, msg) PRLC_ASSERT(expr, msg)
#endif
