// Console table / CSV emission for benchmark binaries.
//
// Every bench/* binary reproduces one table or figure of the paper and
// prints it as an aligned text table; when the PRLC_BENCH_CSV_DIR
// environment variable is set the same rows are mirrored to a CSV file so
// plots can be regenerated offline.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace prlc {

/// Collects rows of string cells and renders them aligned to stdout
/// and/or CSV. Cells are formatted by the caller (see fmt_double).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Render an aligned ASCII table.
  std::string to_text() const;

  /// Render RFC-4180-ish CSV (cells containing comma/quote get quoted).
  std::string to_csv() const;

  /// Print to stdout, and — if PRLC_BENCH_CSV_DIR is set — also write
  /// `<dir>/<name>.csv`. Returns the CSV path if one was written.
  std::optional<std::string> emit(const std::string& name) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.4f" style) without iostream fuss.
std::string fmt_double(double value, int precision = 4);

/// "mean ± ci" cell used across benches.
std::string fmt_mean_ci(double mean, double ci, int precision = 3);

}  // namespace prlc
