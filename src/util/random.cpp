#include "util/random.h"

#include <unordered_set>

namespace prlc {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  PRLC_REQUIRE(k <= n, "cannot sample more items than the population size");
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // For dense samples a shuffle prefix is cheaper and avoids hash overhead.
  if (k * 3 >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + uniform(n - i);
      std::swap(all[i], all[j]);
    }
    out.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k));
    return out;
  }
  // Floyd's subset-sampling algorithm for sparse samples.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = uniform(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

AliasTable::AliasTable(std::span<const double> weights) {
  PRLC_REQUIRE(!weights.empty(), "AliasTable needs at least one weight");
  const std::size_t n = weights.size();
  double total = 0;
  for (double w : weights) {
    PRLC_REQUIRE(w >= 0.0, "AliasTable weights must be nonnegative");
    total += w;
  }
  PRLC_REQUIRE(total > 0.0, "AliasTable weights must not all be zero");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Whatever remains is numerically 1.0.
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;
}

}  // namespace prlc
