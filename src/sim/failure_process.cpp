#include "sim/failure_process.h"

#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace prlc::sim {

WaveFailureProcess::WaveFailureProcess(std::vector<Wave> waves) : waves_(std::move(waves)) {
  for (std::size_t i = 0; i < waves_.size(); ++i) {
    PRLC_REQUIRE(waves_[i].fraction >= 0.0 && waves_[i].fraction <= 1.0,
                 "wave fraction must be in [0,1]");
    PRLC_REQUIRE(i == 0 || waves_[i - 1].time <= waves_[i].time,
                 "waves must be sorted by time");
  }
}

std::optional<FailureEvent> WaveFailureProcess::next(const MembershipView& view, Rng& rng,
                                                     double until) {
  while (true) {
    if (cursor_ < pending_.size()) {
      return FailureEvent{pending_time_, pending_[cursor_++]};
    }
    if (wave_ >= waves_.size()) return std::nullopt;
    // The horizon fences randomness: a wave materializes (draws its
    // victims) only once the caller's clock reaches it.
    if (waves_[wave_].time > until) return std::nullopt;
    const Wave wave = waves_[wave_++];
    // Draw discipline matches the historical kill_uniform_fraction exactly:
    // enumerate the alive ids in id order, then one sample_without_replacement
    // of floor(fraction * alive) indices. A zero-fraction wave makes the
    // same (zero-draw) sample call, so streams stay aligned either way.
    std::vector<net::NodeId> alive_nodes;
    alive_nodes.reserve(view.alive_count());
    for (net::NodeId v = 0; v < view.nodes(); ++v) {
      if (view.alive(v)) alive_nodes.push_back(v);
    }
    const auto kills = static_cast<std::size_t>(
        wave.fraction * static_cast<double>(alive_nodes.size()));
    pending_.clear();
    pending_.reserve(kills);
    for (std::size_t idx : rng.sample_without_replacement(alive_nodes.size(), kills)) {
      pending_.push_back(alive_nodes[idx]);
    }
    cursor_ = 0;
    pending_time_ = wave.time;
  }
}

PoissonFailureProcess::PoissonFailureProcess(double rate) : rate_(rate) {
  PRLC_REQUIRE(rate > 0.0, "poisson churn rate must be positive");
}

std::optional<FailureEvent> PoissonFailureProcess::next(const MembershipView& view, Rng& rng,
                                                        double until) {
  if (!pending_time_.has_value()) {
    const std::size_t alive = view.alive_count();
    if (alive == 0) return std::nullopt;
    // Superposition of `alive` iid Exp(rate) clocks: the next failure is
    // Exp(alive * rate) away and hits a uniformly random alive node.
    const double u = rng.uniform_double();  // in [0, 1) => 1 - u > 0
    pending_time_ = now_ - std::log(1.0 - u) / (rate_ * static_cast<double>(alive));
  }
  if (*pending_time_ > until) return std::nullopt;  // keep the drawn gap cached
  now_ = *pending_time_;
  pending_time_.reset();
  // Rejection-sample the victim over the id space. Expected iterations
  // are nodes/alive — O(1) while the population stays healthy, which the
  // simulator's replacement model guarantees.
  while (true) {
    const auto v = static_cast<net::NodeId>(rng.uniform(view.nodes()));
    if (view.alive(v)) return FailureEvent{now_, v};
  }
}

void FailureModelConfig::validate() const {
  switch (kind) {
    case Kind::kWave:
      for (const double f : wave_fractions) {
        PRLC_REQUIRE(f >= 0.0 && f <= 1.0, "wave fraction must be in [0,1]");
      }
      return;
    case Kind::kPoisson:
      PRLC_REQUIRE(churn_rate > 0.0, "poisson churn rate must be positive");
      return;
  }
  PRLC_ASSERT(false, "unknown failure model kind");
}

std::unique_ptr<FailureProcess> make_failure_process(const FailureModelConfig& config) {
  config.validate();
  switch (config.kind) {
    case FailureModelConfig::Kind::kWave: {
      std::vector<WaveFailureProcess::Wave> waves;
      waves.reserve(config.wave_fractions.size());
      for (std::size_t i = 0; i < config.wave_fractions.size(); ++i) {
        waves.push_back({static_cast<double>(i), config.wave_fractions[i]});
      }
      return std::make_unique<WaveFailureProcess>(std::move(waves));
    }
    case FailureModelConfig::Kind::kPoisson:
      return std::make_unique<PoissonFailureProcess>(config.churn_rate);
  }
  PRLC_ASSERT(false, "unknown failure model kind");
}

std::vector<net::NodeId> FailureDriver::advance_to(double until, Rng& rng) {
  std::vector<net::NodeId> killed;
  while (auto event = process_.next(view_, rng, until)) {
    overlay_.fail_node(event->node);
    killed.push_back(event->node);
  }

  // Churn telemetry, kept name-compatible with the old wave-call API: one
  // wave summary per drive, one journal event per death.
  static obs::Counter& total = obs::counter("churn.nodes_killed");
  static obs::Counter& waves = obs::counter("churn.waves");
  total.add(killed.size());
  waves.add();
  const std::size_t alive_after = overlay_.alive_count();
  obs::gauge("churn.last_alive").set(static_cast<std::int64_t>(alive_after));
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().instant(
        process_.name(), "churn",
        {{"killed", static_cast<double>(killed.size())},
         {"alive_after", static_cast<double>(alive_after)}});
    obs::TraceRecorder::global().count("alive_nodes", "churn",
                                       {{"alive", static_cast<double>(alive_after)}});
  }
  if (obs::events_enabled()) {
    for (const net::NodeId v : killed) {
      obs::emit(obs::EventType::kNodeFailed, static_cast<double>(v));
    }
  }
  return killed;
}

}  // namespace prlc::sim
