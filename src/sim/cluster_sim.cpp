#include "sim/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/count_model.h"
#include "obs/events.h"
#include "obs/timeseries.h"
#include "runtime/trial_runner.h"
#include "sim/event_queue.h"
#include "util/check.h"
#include "util/stats.h"

namespace prlc::sim {
namespace {

constexpr std::uint32_t kNoHost = 0xffffffffu;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Largest-remainder apportionment, duplicated from proto/predistribution
/// so prlc_sim needs no proto link (proto links sim for the failure
/// models; the cycle has to break on this side).
std::vector<std::size_t> apportion(std::size_t total, std::span<const double> weights) {
  std::vector<std::size_t> out(weights.size(), 0);
  double weight_sum = 0;
  for (double w : weights) weight_sum += w;
  PRLC_REQUIRE(weight_sum > 0, "apportionment weights must not all be zero");
  std::vector<std::pair<double, std::size_t>> remainders;  // (-remainder, index)
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = static_cast<double>(total) * weights[i] / weight_sum;
    out[i] = static_cast<std::size_t>(exact);
    assigned += out[i];
    remainders.emplace_back(-(exact - std::floor(exact)), i);
  }
  std::sort(remainders.begin(), remainders.end());
  for (std::size_t j = 0; assigned < total; ++j) {
    ++out[remainders[j % remainders.size()].second];
    ++assigned;
  }
  return out;
}

/// One stored coded block (or, in replication mode, one copy).
struct Block {
  std::uint32_t host = kNoHost;
  std::uint32_t level = 0;
  std::uint32_t source = 0;  ///< replication mode: which source block this copies
  /// Bumped every time the block leaves a host; a kRot event carrying an
  /// older generation refers to bytes that no longer exist and is stale.
  std::uint32_t generation = 0;
  /// Silently corrupt: excluded from counts_ (ground truth) but still
  /// occupying its host until a scrub — or the host's failure — frees it.
  bool rotten = false;
};

struct SimEvent {
  enum class Kind : std::uint8_t { kJoin, kRepairDone, kRot, kScrub };
  Kind kind = Kind::kJoin;
  std::uint32_t id = 0;          ///< kJoin: node slot; kRepairDone/kRot: block index
  std::uint32_t generation = 0;  ///< kRot: blocks_[id].generation at schedule time
};

/// The simulator's own MembershipView: a flat alive bitmap. Node state
/// beyond this byte is lazily materialized — only hosts actually holding
/// blocks appear in the host map.
class BitmapMembership final : public MembershipView {
 public:
  explicit BitmapMembership(std::size_t nodes) : alive_(nodes, 1), alive_count_(nodes) {}

  std::size_t nodes() const override { return alive_.size(); }
  std::size_t alive_count() const override { return alive_count_; }
  bool alive(net::NodeId node) const override { return alive_[node] != 0; }

  void fail(net::NodeId node) {
    PRLC_ASSERT(alive_[node] != 0, "failing a dead node");
    alive_[node] = 0;
    --alive_count_;
  }
  void join(net::NodeId node) {
    PRLC_ASSERT(alive_[node] == 0, "joining an alive node");
    alive_[node] = 1;
    ++alive_count_;
  }

 private:
  std::vector<std::uint8_t> alive_;
  std::size_t alive_count_;
};

/// All mutable state of one cluster lifetime.
class ClusterTrial {
 public:
  ClusterTrial(const ClusterParams& params, Rng& rng)
      : params_(params),
        spec_(params.experiment.spec()),
        membership_(params.nodes),
        rng_(rng),
        counts_(spec_.levels(), 0),
        zero_sources_(spec_.levels(), 0),
        level_queue_(spec_.levels()),
        free_streams_(params.repair.streams) {
    outcome_.first_loss.assign(spec_.levels(), params.max_time);
    outcome_.lost.assign(spec_.levels(), 0);
    outcome_.levels_at.assign(params.sample_times.size(), 0);
  }

  LifetimeOutcome run();

 private:
  void place_blocks();
  void seed_integrity();
  bool is_byzantine(std::uint32_t node) const;
  void schedule_rot(std::uint32_t block, double now);
  std::size_t decoded_levels() const;
  void record_losses(double now);
  void enqueue_repair(std::uint32_t block);
  void detach_block(std::uint32_t block);
  void lose_block(std::uint32_t block, double now);
  void on_failure(const FailureEvent& event);
  void on_join(std::uint32_t node);
  void on_rot(std::uint32_t block, std::uint32_t generation, double now);
  void on_scrub(double now);
  void on_repair_done(std::uint32_t block, double now);
  void dispatch_repairs(double now);
  bool repairable(const Block& block) const;
  std::optional<std::uint32_t> pop_repair_candidate();
  void drain_samples(double upto);
  void finish(double final_time);

  const ClusterParams& params_;
  codes::PrioritySpec spec_;
  BitmapMembership membership_;
  Rng& rng_;
  std::unique_ptr<FailureProcess> process_;

  std::vector<Block> blocks_;
  /// Lazily materialized node storage: host id -> indices into blocks_.
  /// Looked up and erased by key only, never iterated — determinism is
  /// unaffected by the hash order.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> host_blocks_;
  std::vector<std::size_t> counts_;        ///< surviving coded blocks per level
  std::vector<std::uint32_t> copies_;      ///< replication: copies per source block
  std::vector<std::size_t> zero_sources_;  ///< replication: dead sources per level

  std::uint64_t byz_salt_ = 0;  ///< stateless Byzantine membership hash salt
  std::unordered_set<std::uint32_t> quarantined_;

  EventQueue<SimEvent> queue_;
  std::vector<std::deque<std::uint32_t>> level_queue_;  ///< priority-aware repair backlog
  std::deque<std::uint32_t> fifo_queue_;                ///< priority-blind repair backlog
  std::size_t free_streams_;
  std::size_t decoded_ = 0;   ///< cached decodable prefix
  std::size_t sample_ = 0;    ///< next params_.sample_times index to drain
  bool terminal_ = false;     ///< level 1 lost: nothing can ever be repaired again
  LifetimeOutcome outcome_;

  obs::SeriesId decoded_series_ = obs::timeseries("cluster.decoded_levels");
  obs::SeriesId margin_series_ = obs::timeseries("cluster.margin.l1");
};

void ClusterTrial::place_blocks() {
  const std::size_t nodes = params_.nodes;
  if (params_.replication) {
    // replication_factor copies of every source block, each on an
    // independently uniform node.
    const std::size_t sources = spec_.total();
    copies_.assign(sources, static_cast<std::uint32_t>(params_.replication_factor));
    blocks_.reserve(sources * params_.replication_factor);
    for (std::size_t j = 0; j < sources; ++j) {
      const auto level = static_cast<std::uint32_t>(spec_.level_of_block(j));
      for (std::size_t r = 0; r < params_.replication_factor; ++r) {
        const auto host = static_cast<std::uint32_t>(rng_.uniform(nodes));
        blocks_.push_back(Block{host, level, static_cast<std::uint32_t>(j)});
      }
    }
  } else {
    // M coded blocks split over the levels by largest-remainder
    // apportionment of the priority distribution — the deterministic
    // partition predistribution uses, so a simulated cluster stores the
    // same per-level mix the protocol would.
    const std::size_t coded =
        params_.locations != 0 ? params_.locations : 2 * spec_.total();
    const auto parts = apportion(coded, params_.experiment.distribution().values());
    blocks_.reserve(coded);
    for (std::size_t level = 0; level < parts.size(); ++level) {
      for (std::size_t c = 0; c < parts[level]; ++c) {
        const auto host = static_cast<std::uint32_t>(rng_.uniform(nodes));
        blocks_.push_back(Block{host, static_cast<std::uint32_t>(level), 0});
      }
    }
  }
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    host_blocks_[blocks_[b].host].push_back(b);
    ++counts_[blocks_[b].level];
  }
}

/// Post-placement silent-corruption setup. Everything here is gated on
/// the integrity knobs so an integrity-off trial consumes exactly the
/// draw stream of the pre-integrity simulator.
void ClusterTrial::seed_integrity() {
  const IntegrityConfig& integrity = params_.integrity;
  if (!integrity.active()) return;
  if (integrity.byzantine_fraction > 0.0) byz_salt_ = rng_();
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    if (is_byzantine(blocks_[b].host)) {
      // Forged from birth: the host stores a well-formed lie.
      blocks_[b].rotten = true;
      --counts_[blocks_[b].level];
      ++outcome_.rot_events;
    } else if (integrity.rot_rate > 0.0) {
      schedule_rot(b, 0.0);
    }
  }
  if (integrity.scrub_interval > 0.0 && integrity.scrub_interval <= params_.max_time) {
    queue_.push(integrity.scrub_interval, SimEvent{SimEvent::Kind::kScrub, 0, 0});
  }
}

bool ClusterTrial::is_byzantine(std::uint32_t node) const {
  if (params_.integrity.byzantine_fraction <= 0.0) return false;
  // Stateless membership: 10^6 nodes must not cost 10^6 Bernoulli draws,
  // and a slot must stay Byzantine across fail/rejoin.
  std::uint64_t state = byz_salt_ ^ (0x9e3779b97f4a7c15ULL * (node + 1ULL));
  const double u = static_cast<double>(splitmix64_next(state) >> 11) * 0x1.0p-53;
  return u < params_.integrity.byzantine_fraction;
}

/// Draw the block's next exponential rot time. One draw per call whenever
/// rot_rate > 0 — also when the sample lands past the horizon — so the
/// stream stays aligned across parameter sweeps that share a seed.
void ClusterTrial::schedule_rot(std::uint32_t block, double now) {
  const double u = rng_.uniform_double();
  const double at = now - std::log(1.0 - u) / params_.integrity.rot_rate;
  if (at > params_.max_time) return;
  queue_.push(at, SimEvent{SimEvent::Kind::kRot, block, blocks_[block].generation});
}

std::size_t ClusterTrial::decoded_levels() const {
  if (!params_.replication) {
    return analysis::levels_from_counts(params_.experiment.scheme, spec_, counts_);
  }
  // Replication: level i readable iff every source block in it still has a
  // copy; report prefix semantics like the coded schemes.
  std::size_t k = 0;
  while (k < spec_.levels() && zero_sources_[k] == 0) ++k;
  return k;
}

void ClusterTrial::record_losses(double now) {
  decoded_ = decoded_levels();
  for (std::size_t k = decoded_; k < spec_.levels(); ++k) {
    if (!outcome_.lost[k]) {
      outcome_.lost[k] = 1;
      outcome_.first_loss[k] = now;
    }
  }
  // Level 1 lost is terminal: every repair gate needs a decodable prefix of
  // at least one level (replication: a surviving copy, which a dead source
  // by definition lacks), so from here the cluster only decays.
  if (outcome_.lost[0]) terminal_ = true;
}

void ClusterTrial::enqueue_repair(std::uint32_t block) {
  if (params_.repair.policy == RepairPolicy::kNone || terminal_) return;
  if (params_.repair.policy == RepairPolicy::kPriorityAware) {
    level_queue_[blocks_[block].level].push_back(block);
  } else {
    fifo_queue_.push_back(block);
  }
}

/// Unlink a still-hosted block from its host's lazily materialized list
/// (scrub frees it while the host stays alive; failures bulk-erase the
/// whole list instead).
void ClusterTrial::detach_block(std::uint32_t block) {
  const auto it = host_blocks_.find(blocks_[block].host);
  PRLC_ASSERT(it != host_blocks_.end(), "detaching from an unknown host");
  std::erase(it->second, block);
  if (it->second.empty()) host_blocks_.erase(it);
}

void ClusterTrial::lose_block(std::uint32_t block, double now) {
  Block& b = blocks_[block];
  b.host = kNoHost;
  ++b.generation;
  if (b.rotten) {
    // Already off the count ledger since it rotted; the loud failure just
    // surfaces the loss to the repair scheduler.
    b.rotten = false;
  } else {
    --counts_[b.level];
    if (params_.replication && --copies_[b.source] == 0) ++zero_sources_[b.level];
  }
  enqueue_repair(block);
  (void)now;
}

void ClusterTrial::on_failure(const FailureEvent& event) {
  membership_.fail(event.node);
  ++outcome_.failures;
  obs::emit(obs::EventType::kNodeFailed, static_cast<double>(event.node));
  queue_.push(event.time + params_.replacement_delay,
              SimEvent{SimEvent::Kind::kJoin, static_cast<std::uint32_t>(event.node)});
  const auto it = host_blocks_.find(static_cast<std::uint32_t>(event.node));
  if (it == host_blocks_.end()) return;
  for (const std::uint32_t block : it->second) lose_block(block, event.time);
  host_blocks_.erase(it);
  record_losses(event.time);
}

void ClusterTrial::on_join(std::uint32_t node) {
  membership_.join(node);
  ++outcome_.joins;
}

void ClusterTrial::on_rot(std::uint32_t block, std::uint32_t generation, double now) {
  Block& b = blocks_[block];
  // Stale: the bytes this clock was armed for left the host (failure,
  // scrub, repair round-trip) before the clock fired.
  if (b.generation != generation || b.host == kNoHost || b.rotten) return;
  b.rotten = true;
  --counts_[b.level];
  ++outcome_.rot_events;
  // Ground truth degrades now; the repair scheduler only learns at the
  // next scrub (or when the host dies loudly).
  record_losses(now);
}

void ClusterTrial::on_scrub(double now) {
  ++outcome_.scrub_scans;
  // Full scan in block-index order: detection within one tick is
  // deterministic and independent of hash-map iteration order.
  for (std::uint32_t block = 0; block < blocks_.size(); ++block) {
    Block& b = blocks_[block];
    if (b.host == kNoHost || !b.rotten) continue;
    ++outcome_.rot_detected;
    obs::emit(obs::EventType::kIntegrityViolation, static_cast<double>(b.host),
              static_cast<double>(block));
    if (is_byzantine(b.host) && quarantined_.insert(b.host).second) {
      ++outcome_.quarantined_nodes;
      obs::emit(obs::EventType::kNodeQuarantined, static_cast<double>(b.host));
    }
    detach_block(block);
    b.host = kNoHost;
    b.rotten = false;
    ++b.generation;
    enqueue_repair(block);
  }
  const double next = now + params_.integrity.scrub_interval;
  if (next <= params_.max_time) {
    queue_.push(next, SimEvent{SimEvent::Kind::kScrub, 0, 0});
  }
}

bool ClusterTrial::repairable(const Block& block) const {
  // Re-encoding a level's block draws on live data: coded schemes need the
  // prefix through that level decodable, replication needs a surviving
  // copy of the same source block.
  if (params_.replication) return copies_[block.source] > 0;
  return decoded_ > block.level;
}

std::optional<std::uint32_t> ClusterTrial::pop_repair_candidate() {
  if (params_.repair.policy == RepairPolicy::kPriorityAware) {
    for (auto& q : level_queue_) {
      if (q.empty()) continue;
      const std::uint32_t block = q.front();
      q.pop_front();
      return block;
    }
    return std::nullopt;
  }
  if (fifo_queue_.empty()) return std::nullopt;
  const std::uint32_t block = fifo_queue_.front();
  fifo_queue_.pop_front();
  return block;
}

void ClusterTrial::dispatch_repairs(double now) {
  while (free_streams_ > 0) {
    const auto candidate = pop_repair_candidate();
    if (!candidate.has_value()) return;
    if (!repairable(blocks_[*candidate])) {
      ++outcome_.repairs_dropped;
      continue;  // dropping does not consume the stream
    }
    --free_streams_;
    queue_.push(now + params_.repair.repair_duration(),
                SimEvent{SimEvent::Kind::kRepairDone, *candidate});
  }
}

void ClusterTrial::on_repair_done(std::uint32_t block, double now) {
  ++free_streams_;
  Block& b = blocks_[block];
  // Quarantined hosts never receive repairs. Cheap bound first: alive >
  // |quarantined| guarantees an eligible host; only when that fails count
  // the alive quarantined exactly (set iteration order doesn't matter for
  // a count).
  bool placeable = membership_.alive_count() > quarantined_.size();
  if (!placeable && membership_.alive_count() > 0) {
    std::size_t alive_quarantined = 0;
    for (const std::uint32_t q : quarantined_) alive_quarantined += membership_.alive(q);
    placeable = membership_.alive_count() > alive_quarantined;
  }
  // The level may have gone under while the repair was in flight; the
  // re-encode has nothing valid to draw on, so the work is abandoned.
  if (!repairable(b) || !placeable) {
    ++outcome_.repairs_dropped;
    return;
  }
  std::uint32_t host;
  do {
    host = static_cast<std::uint32_t>(rng_.uniform(params_.nodes));
  } while (!membership_.alive(host) || quarantined_.contains(host));
  b.host = host;
  host_blocks_[host].push_back(block);
  ++outcome_.repairs_completed;
  outcome_.repair_traffic += static_cast<double>(params_.repair.fetch_blocks + 1);
  if (is_byzantine(host)) {
    // Landed on an undetected Byzantine host: stored forged, never counted.
    b.rotten = true;
    ++outcome_.rot_events;
  } else {
    ++counts_[b.level];
    if (params_.replication && copies_[b.source]++ == 0) --zero_sources_[b.level];
    if (params_.integrity.rot_rate > 0.0) schedule_rot(block, now);
  }
  decoded_ = decoded_levels();  // a repair can revive a higher level (PLC)
}

void ClusterTrial::drain_samples(double upto) {
  while (sample_ < params_.sample_times.size() && params_.sample_times[sample_] < upto) {
    outcome_.levels_at[sample_] = static_cast<double>(decoded_);
    obs::set_logical_time(sample_);
    obs::sample(decoded_series_, static_cast<double>(decoded_));
    const double margin =
        params_.replication
            ? -static_cast<double>(zero_sources_[0])
            : static_cast<double>(counts_[0]) - static_cast<double>(spec_.level_size(0));
    obs::sample(margin_series_, margin);
    ++sample_;
  }
}

void ClusterTrial::finish(double final_time) {
  drain_samples(kInf);
  if (terminal_) {
    // In-flight and queued repairs will never complete; account for them
    // so traffic books balance.
    outcome_.repairs_dropped += params_.repair.streams - free_streams_;
    outcome_.repairs_dropped += fifo_queue_.size();
    for (const auto& q : level_queue_) outcome_.repairs_dropped += q.size();
  }
  outcome_.peak_queue = queue_.max_size_seen();
  (void)final_time;
}

LifetimeOutcome ClusterTrial::run() {
  place_blocks();
  seed_integrity();
  process_ = make_failure_process(params_.experiment.failure);
  // An undersized placement — or one forged hollow by Byzantine hosts —
  // is a loss at t = 0.
  record_losses(0.0);

  while (!terminal_) {
    const double queue_time = queue_.empty() ? kInf : queue_.top().time;
    // Ask the failure stream first, with the next scheduled event as the
    // horizon: failures break (time) ties against scheduled events — a
    // node that dies the instant its repair lands dies holding the
    // repaired block. The horizon also fences randomness (see
    // FailureProcess::next), keeping the trial's draw order reproducible.
    const double horizon = std::min(queue_time, params_.max_time);
    double now;
    if (auto event = process_->next(membership_, rng_, horizon)) {
      now = event->time;
      drain_samples(now);
      ++outcome_.events;
      on_failure(*event);
    } else if (queue_time <= params_.max_time) {
      now = queue_time;
      drain_samples(now);
      ++outcome_.events;
      const auto entry = queue_.pop();
      switch (entry.payload.kind) {
        case SimEvent::Kind::kJoin:
          on_join(entry.payload.id);
          break;
        case SimEvent::Kind::kRepairDone:
          on_repair_done(entry.payload.id, entry.time);
          break;
        case SimEvent::Kind::kRot:
          on_rot(entry.payload.id, entry.payload.generation, entry.time);
          break;
        case SimEvent::Kind::kScrub:
          on_scrub(entry.time);
          break;
      }
    } else {
      break;  // nothing left inside the horizon
    }
    if (!terminal_) dispatch_repairs(now);
  }
  finish(params_.max_time);
  return std::move(outcome_);
}

}  // namespace

const char* to_string(RepairPolicy policy) {
  switch (policy) {
    case RepairPolicy::kNone:
      return "none";
    case RepairPolicy::kPriorityAware:
      return "priority_aware";
    case RepairPolicy::kPriorityBlind:
      return "priority_blind";
  }
  PRLC_ASSERT(false, "unknown repair policy");
}

std::optional<RepairPolicy> try_repair_policy_from_string(std::string_view name) {
  if (name == "none") return RepairPolicy::kNone;
  if (name == "priority_aware" || name == "aware") return RepairPolicy::kPriorityAware;
  if (name == "priority_blind" || name == "blind") return RepairPolicy::kPriorityBlind;
  return std::nullopt;
}

void RepairConfig::validate() const {
  PRLC_REQUIRE(bandwidth > 0.0, "repair bandwidth must be positive");
  PRLC_REQUIRE(streams > 0, "need at least one repair stream");
  PRLC_REQUIRE(fetch_blocks > 0, "re-encoding must fetch at least one block");
}

void IntegrityConfig::validate() const {
  PRLC_REQUIRE(rot_rate >= 0.0 && std::isfinite(rot_rate),
               "rot rate must be a finite nonnegative hazard");
  PRLC_REQUIRE(byzantine_fraction >= 0.0 && byzantine_fraction <= 1.0,
               "byzantine fraction must be in [0,1]");
  PRLC_REQUIRE(scrub_interval >= 0.0 && std::isfinite(scrub_interval),
               "scrub interval must be finite and nonnegative");
}

void ClusterParams::validate() const {
  PRLC_REQUIRE(nodes > 0, "cluster needs at least one node");
  PRLC_REQUIRE(max_time > 0.0, "max_time must be positive");
  PRLC_REQUIRE(replacement_delay >= 0.0, "replacement delay must be nonnegative");
  PRLC_REQUIRE(!replication || locations == 0,
               "replication mode sizes storage from replication_factor, not locations");
  PRLC_REQUIRE(!replication || replication_factor > 0,
               "replication needs at least one copy per block");
  for (std::size_t i = 1; i < sample_times.size(); ++i) {
    PRLC_REQUIRE(sample_times[i - 1] <= sample_times[i],
                 "sample times must be nondecreasing");
  }
  integrity.validate();
  PRLC_REQUIRE(!replication || !integrity.active(),
               "silent-corruption model needs coded storage; replication mode "
               "has no fingerprintable coded blocks");
  experiment.validate();
  repair.validate();
}

LifetimeOutcome run_cluster_trial(const ClusterParams& params, Rng& rng) {
  return ClusterTrial(params, rng).run();
}

ClusterPoint run_cluster_lifetime(const ClusterParams& params) {
  params.validate();
  runtime::TrialRunner runner(params.experiment.threads);
  const auto outcomes = runner.run(
      params.experiment.trials, params.experiment.root_seed,
      [&params](std::size_t, Rng& rng) { return run_cluster_trial(params, rng); });

  const std::size_t levels = params.experiment.level_sizes.size();
  std::vector<RunningStats> first_loss(levels);
  std::vector<RunningStats> lost(levels);
  std::vector<RunningStats> at(params.sample_times.size());
  RunningStats failures, joins, repairs, dropped, traffic, events;
  RunningStats rotted, detected, scrubs, quarantined;
  double peak = 0;
  // Slot order is trial order: the merge is bit-identical at any --threads.
  for (const LifetimeOutcome& o : outcomes) {
    for (std::size_t k = 0; k < levels; ++k) {
      first_loss[k].add(o.first_loss[k]);
      lost[k].add(o.lost[k] ? 1.0 : 0.0);
    }
    for (std::size_t s = 0; s < at.size(); ++s) at[s].add(o.levels_at[s]);
    failures.add(static_cast<double>(o.failures));
    joins.add(static_cast<double>(o.joins));
    repairs.add(static_cast<double>(o.repairs_completed));
    dropped.add(static_cast<double>(o.repairs_dropped));
    traffic.add(o.repair_traffic);
    events.add(static_cast<double>(o.events));
    rotted.add(static_cast<double>(o.rot_events));
    detected.add(static_cast<double>(o.rot_detected));
    scrubs.add(static_cast<double>(o.scrub_scans));
    quarantined.add(static_cast<double>(o.quarantined_nodes));
    peak = std::max(peak, static_cast<double>(o.peak_queue));
  }

  ClusterPoint point;
  point.mean_first_loss.resize(levels);
  point.loss_fraction.resize(levels);
  for (std::size_t k = 0; k < levels; ++k) {
    point.mean_first_loss[k] = first_loss[k].mean();
    point.loss_fraction[k] = lost[k].mean();
  }
  point.mean_ttfl_l1 = first_loss[0].mean();
  point.ci95_ttfl_l1 = first_loss[0].ci95_halfwidth();
  point.mean_levels_at.resize(at.size());
  for (std::size_t s = 0; s < at.size(); ++s) point.mean_levels_at[s] = at[s].mean();
  point.mean_failures = failures.mean();
  point.mean_joins = joins.mean();
  point.mean_repairs = repairs.mean();
  point.mean_repairs_dropped = dropped.mean();
  point.mean_repair_traffic = traffic.mean();
  point.mean_events = events.mean();
  point.max_peak_queue = peak;
  point.mean_rot_events = rotted.mean();
  point.mean_rot_detected = detected.mean();
  point.mean_scrub_scans = scrubs.mean();
  point.mean_quarantined = quarantined.mean();
  return point;
}

}  // namespace prlc::sim
