// Discrete-event cluster simulator with a priority-aware repair
// scheduler — the million-node, continuous-churn complement to the fixed
// churn waves of the persistence experiments.
//
// One trial is one whole cluster lifetime: W nodes (lazily materialized —
// only nodes holding blocks get any per-node storage beyond one byte of
// liveness), M stored coded blocks partitioned over the priority levels,
// a FailureProcess streaming (time, node) deaths, and five event kinds
// on a deterministic (time, seq) queue:
//
//   * failure — the node dies, its blocks are lost, a replacement join is
//     scheduled, and the lost blocks enter the repair scheduler;
//   * join    — the slot comes back alive with empty storage;
//   * repair  — a repair stream finishes re-encoding one lost block onto
//     a random alive, non-quarantined node;
//   * rot     — a stored block silently corrupts (IntegrityConfig): ground
//     truth degrades now, the scheduler doesn't know yet;
//   * scrub   — periodic fingerprint scan: rotten blocks are detected and
//     fed to the repair scheduler, Byzantine hosts are quarantined.
//
// Decodability is evaluated on the count model (analysis/count_model.h):
// at 10^6 nodes no Galois-field work happens — whether the first k levels
// decode is a function of the per-level surviving-block counts alone,
// which is exactly the regime the paper's analysis works in. The
// replication baseline instead tracks per-source-block copy counts.
//
// The repair scheduler is master-style: it watches the per-level
// decodability margin and, under PriorityAware, always spends the next
// free repair stream on the lowest-numbered (highest-priority) level with
// lost blocks; PriorityBlind repairs in plain loss order at the same
// total bandwidth — the ablation pair behind the "priority-aware repair
// extends level-1 time-to-first-loss" claim. A block is only repairable
// while its level is still decodable (re-encoding draws on live data; a
// lost level cannot be re-encoded), so once a level goes under, its
// outstanding repairs are abandoned. That gate is conservative for PLC,
// where a later lower-level repair could in principle revive the prefix.
//
// Trials shard across runtime::TrialRunner with counter-based seeds;
// every number this module reports is bit-identical at any --threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "proto/experiment_config.h"
#include "sim/failure_process.h"

namespace prlc::sim {

enum class RepairPolicy {
  kNone,           ///< no repair: the pure persistence decay baseline
  kPriorityAware,  ///< lowest level (highest priority) first
  kPriorityBlind,  ///< plain FIFO in loss order
};

const char* to_string(RepairPolicy policy);
std::optional<RepairPolicy> try_repair_policy_from_string(std::string_view name);

/// Repair-bandwidth model: `streams` concurrent repair workers (think
/// replacement nodes), each limited to bandwidth/streams block transfers
/// per unit time. Re-encoding one block reads `fetch_blocks` surviving
/// blocks and writes one, so a stream holds a repair for
/// (fetch_blocks + 1) * streams / bandwidth time units. Comparing
/// policies at equal `bandwidth` is comparing at equal total repair
/// capacity — only the order differs.
struct RepairConfig {
  RepairPolicy policy = RepairPolicy::kPriorityAware;
  double bandwidth = 8.0;        ///< total blocks transferred per unit time
  std::size_t streams = 4;       ///< concurrent repair workers
  std::size_t fetch_blocks = 4;  ///< surviving blocks read per re-encoded block

  /// Time one stream spends repairing one block.
  double repair_duration() const {
    return static_cast<double>(fetch_blocks + 1) * static_cast<double>(streams) / bandwidth;
  }

  void validate() const;
};

/// Silent-corruption model for the cluster simulator (DESIGN §13): blocks
/// rot at rest under a per-block exponential clock, Byzantine hosts serve
/// forged blocks from the moment they store them, and a periodic scrubber
/// is the only way the repair scheduler learns about either. Ground-truth
/// decodability reflects a rotten block immediately; the repair backlog
/// only sees it once a scrub scan detects it — the detection lag is the
/// quantity the scrub-interval sweep measures. The first detection on a
/// Byzantine host quarantines it: repairs never target quarantined hosts.
struct IntegrityConfig {
  double rot_rate = 0.0;  ///< per-block at-rest rot hazard (events per unit time)
  /// Fraction of node slots that are Byzantine (membership by stateless
  /// hash, so a slot stays Byzantine across fail/rejoin). Blocks stored on
  /// them are forged from birth.
  double byzantine_fraction = 0.0;
  /// Scrub period; 0 disables scrubbing (silent damage is then only
  /// discovered when its host fails loudly).
  double scrub_interval = 0.0;

  bool active() const { return rot_rate > 0.0 || byzantine_fraction > 0.0; }
  void validate() const;
};

struct ClusterParams {
  std::size_t nodes = 100000;  ///< cluster size W (10^6 is in budget)
  /// Stored coded blocks M; 0 = 2x the spec's source-block count. In
  /// replication mode 0 = replication_factor copies of every source block.
  std::size_t locations = 0;
  bool replication = false;            ///< replication baseline instead of experiment.scheme
  std::size_t replication_factor = 3;  ///< copies per source block (replication mode)
  double max_time = 50.0;              ///< simulate until here (censoring horizon)
  double replacement_delay = 0.5;      ///< failed slot rejoins empty after this
  std::vector<double> sample_times;    ///< ascending decoded-levels probe times
  /// Monte-Carlo execution (trials/root_seed/threads/scheme/spec) plus
  /// the churn model (experiment.failure).
  proto::ExperimentConfig experiment;
  RepairConfig repair;
  IntegrityConfig integrity;  ///< silent corruption + scrubbing (coded modes only)

  void validate() const;
};

/// Everything one cluster lifetime reports.
struct LifetimeOutcome {
  /// Per level: time the level first became undecodable, censored at
  /// max_time when it never did (check `lost`).
  std::vector<double> first_loss;
  std::vector<std::uint8_t> lost;  ///< per level: ever lost within the horizon
  std::vector<double> levels_at;   ///< decoded levels at params.sample_times
  std::size_t failures = 0;
  std::size_t joins = 0;
  std::size_t repairs_completed = 0;
  std::size_t repairs_dropped = 0;  ///< abandoned: level lost before repair
  double repair_traffic = 0;        ///< blocks transferred by completed repairs
  std::size_t events = 0;           ///< events processed
  std::size_t peak_queue = 0;       ///< max pending events
  std::size_t rot_events = 0;       ///< blocks that silently rotted (incl. forged-at-birth)
  std::size_t rot_detected = 0;     ///< rotten blocks a scrub scan caught
  std::size_t scrub_scans = 0;      ///< scrub ticks executed
  std::size_t quarantined_nodes = 0;  ///< Byzantine hosts quarantined
};

/// Trial aggregate across `experiment.trials` lifetimes.
struct ClusterPoint {
  std::vector<double> mean_first_loss;  ///< per level, censored at max_time
  std::vector<double> loss_fraction;    ///< per level: fraction of trials that lost it
  double mean_ttfl_l1 = 0;              ///< time-to-first-loss of level 1
  double ci95_ttfl_l1 = 0;
  std::vector<double> mean_levels_at;  ///< per params.sample_times entry
  double mean_failures = 0;
  double mean_joins = 0;
  double mean_repairs = 0;
  double mean_repairs_dropped = 0;
  double mean_repair_traffic = 0;
  double mean_events = 0;
  double max_peak_queue = 0;
  double mean_rot_events = 0;
  double mean_rot_detected = 0;
  double mean_scrub_scans = 0;
  double mean_quarantined = 0;
};

/// One cluster lifetime with explicit randomness — the deterministic unit
/// the tests drive directly.
LifetimeOutcome run_cluster_trial(const ClusterParams& params, Rng& rng);

/// Full Monte-Carlo run: params.experiment.trials lifetimes sharded over
/// params.experiment.threads threads, merged in trial order.
ClusterPoint run_cluster_lifetime(const ClusterParams& params);

}  // namespace prlc::sim
