// Deterministic discrete-event queue: a binary min-heap ordered by
// (fire time, insertion sequence).
//
// std::priority_queue over doubles alone would leave simultaneous events
// (every wave, every repair completing in lockstep) in unspecified
// relative order — and the simulator's bit-identical-at-any-thread-count
// contract cannot tolerate "unspecified". The tie-break by a per-queue
// monotone sequence number makes the order total: two events never
// compare equal, so pop order is a pure function of push order, and a
// whole cluster lifetime replays identically from its seed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace prlc::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    double time = 0;
    std::uint64_t seq = 0;  ///< insertion order; the total-order tie-break
    Payload payload{};

    /// Strict weak ordering by (time, seq); seq is unique per queue, so
    /// this is a total order.
    bool before(const Entry& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::size_t max_size_seen() const { return max_size_; }

  /// Earliest pending entry; requires non-empty.
  const Entry& top() const {
    PRLC_REQUIRE(!heap_.empty(), "top() on an empty event queue");
    return heap_.front();
  }

  void push(double time, Payload payload) {
    heap_.push_back(Entry{time, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
    if (heap_.size() > max_size_) max_size_ = heap_.size();
  }

  /// Pop the earliest entry; requires non-empty.
  Entry pop() {
    PRLC_REQUIRE(!heap_.empty(), "pop() on an empty event queue");
    Entry out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  void clear() {
    heap_.clear();
    // next_seq_ deliberately keeps counting: entries pushed after a clear
    // still order after everything that came before.
  }

 private:
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t best = i;
      if (left < n && heap_[left].before(heap_[best])) best = left;
      if (right < n && heap_[right].before(heap_[best])) best = right;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t max_size_ = 0;
};

}  // namespace prlc::sim
