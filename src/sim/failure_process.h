// Unified failure-event streams — one churn API for wave experiments and
// the discrete-event cluster simulator.
//
// Before this layer churn was a fixed-wave *call* (net/churn.h killed a
// fraction of an overlay in place) while the simulator direction needed a
// continuous *stream* of failures. FailureProcess unifies the two: a
// process is an iterator over (time, node) failure events drawn against a
// MembershipView of whoever is currently alive. Wave churn is one
// implementation (WaveFailureProcess — byte-identical Rng draws to the
// old kill_uniform_fraction, so every committed baseline is preserved);
// memoryless exponential lifetimes are another (PoissonFailureProcess —
// the aggregate failure stream of W iid Exp(rate) lifetimes, which by
// memorylessness is a Poisson process of rate alive*rate with a uniform
// victim).
//
// Processes are cheap per-trial objects: construct one per cluster
// lifetime, drive it with the trial's Rng, never share across trials.
// All randomness flows through the Rng argument, so trials stay
// counter-seeded and bit-identical at any thread count (see
// runtime/trial_runner.h).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "net/overlay.h"
#include "net/types.h"
#include "util/random.h"

namespace prlc::sim {

/// What a failure process may ask about the cluster it is killing. Kept
/// minimal so both a geometric Overlay and the simulator's lazily
/// materialized node table can stand behind it.
class MembershipView {
 public:
  virtual ~MembershipView() = default;
  virtual std::size_t nodes() const = 0;        ///< total slots (alive + failed)
  virtual std::size_t alive_count() const = 0;  ///< currently alive
  virtual bool alive(net::NodeId node) const = 0;
};

/// Adapter: any net::Overlay is a MembershipView.
class OverlayMembership final : public MembershipView {
 public:
  explicit OverlayMembership(const net::Overlay& overlay) : overlay_(overlay) {}
  std::size_t nodes() const override { return overlay_.nodes(); }
  std::size_t alive_count() const override { return overlay_.alive_count(); }
  bool alive(net::NodeId node) const override { return overlay_.alive(node); }

 private:
  const net::Overlay& overlay_;
};

/// One failure: node `node` dies at simulation time `time`.
struct FailureEvent {
  double time = 0;
  net::NodeId node = 0;
};

/// A stream of failure events in nondecreasing time order. The caller
/// applies each event to its membership (fail the node) before asking for
/// the next one — victim selection sees the up-to-date alive set.
class FailureProcess {
 public:
  virtual ~FailureProcess() = default;

  /// Telemetry label ("mass_failure", "poisson_churn", ...).
  virtual const char* name() const = 0;

  /// Next failure with time <= until, or nullopt when the stream has no
  /// event inside the horizon (past the last wave; next death further
  /// out; nobody left alive). The horizon is a hard randomness fence:
  /// asking about [0, until] consumes no draws belonging to later events,
  /// so a caller that interleaves other work on the same Rng (collection
  /// rounds between churn points; repair placement between deaths) keeps
  /// a reproducible draw order. Horizons across calls must not decrease.
  virtual std::optional<FailureEvent> next(const MembershipView& view, Rng& rng,
                                           double until) = 0;
};

/// Fixed churn waves: at `time`, kill floor(fraction * alive) nodes
/// chosen uniformly without replacement among the currently alive —
/// exactly the draws net::kill_uniform_fraction has always made, so a
/// wave process driving an overlay reproduces historical experiment
/// streams bit for bit.
class WaveFailureProcess final : public FailureProcess {
 public:
  struct Wave {
    double time = 0;
    double fraction = 0;  ///< of the alive population at fire time, in [0,1]
  };

  /// `waves` must be sorted by nondecreasing time.
  explicit WaveFailureProcess(std::vector<Wave> waves);

  const char* name() const override { return "mass_failure"; }
  std::optional<FailureEvent> next(const MembershipView& view, Rng& rng,
                                   double until) override;

 private:
  std::vector<Wave> waves_;
  std::size_t wave_ = 0;              ///< next wave to materialize
  std::vector<net::NodeId> pending_;  ///< victims of the materialized wave
  std::size_t cursor_ = 0;
  double pending_time_ = 0;
};

/// Continuous churn: every alive node's remaining lifetime is
/// Exp(rate), so the cluster-wide failure stream is a Poisson process of
/// rate alive*rate and the victim is uniform among the alive (the lazily
/// materialized form — no per-node timer is ever scheduled, which is what
/// lets one stream drive 10^6 nodes).
class PoissonFailureProcess final : public FailureProcess {
 public:
  /// `rate`: failures per node per unit time (1 / mean lifetime). Must be
  /// positive.
  explicit PoissonFailureProcess(double rate);

  const char* name() const override { return "poisson_churn"; }
  std::optional<FailureEvent> next(const MembershipView& view, Rng& rng,
                                   double until) override;

  double rate() const { return rate_; }

 private:
  double rate_;
  double now_ = 0;
  /// Gap already drawn but beyond the caller's horizon. The gap is kept
  /// (not redrawn) even though membership may change before it fires —
  /// the standard lazy-superposition approximation; the victim draw waits
  /// until release so it always sees the current alive set.
  std::optional<double> pending_time_;
};

/// Value-type description of a failure process, so ExperimentConfig can
/// carry the churn model across threads and trials (each trial
/// materializes its own process from the shared config).
struct FailureModelConfig {
  enum class Kind {
    kWave,     ///< waves at t = 0, 1, 2, ... with wave_fractions[i]
    kPoisson,  ///< exponential lifetimes at churn_rate
  };
  Kind kind = Kind::kPoisson;
  /// kWave: fraction of the then-alive population killed at t = i.
  std::vector<double> wave_fractions;
  /// kPoisson: failures per node per unit time (1 / mean lifetime).
  double churn_rate = 0.02;

  void validate() const;
};

/// Materialize a process from its description (one per trial).
std::unique_ptr<FailureProcess> make_failure_process(const FailureModelConfig& config);

/// Drives a FailureProcess against an Overlay: pulls events up to a time
/// horizon, fails the nodes, and emits the same churn telemetry
/// (churn.nodes_killed / churn.waves counters, per-node kNodeFailed
/// journal events) the old wave-call API produced. Both the legacy
/// net::kill_uniform_fraction and the persistence experiment's sweep loop
/// run their churn through one of these.
class FailureDriver {
 public:
  FailureDriver(FailureProcess& process, net::Overlay& overlay)
      : process_(process), overlay_(overlay), view_(overlay) {}

  /// Apply every failure with time <= until; returns this call's kills in
  /// event order.
  std::vector<net::NodeId> advance_to(double until, Rng& rng);

 private:
  FailureProcess& process_;
  net::Overlay& overlay_;
  OverlayMembership view_;
};

}  // namespace prlc::sim
