// Count-based decodability model (Theorem 1 and the SLC events of
// Sec. 3.3.1), plus its Monte-Carlo evaluator.
//
// Over a sufficiently large field, whether the first k levels decode is a
// function of the per-level coded-block *counts* D_1..D_n alone — the
// coefficient values only matter through O(1/q) rank-deficiency events.
// This module evaluates that combinatorial model:
//
//   SLC:  X = max prefix k with D_i >= a_i for all i <= k.
//   PLC:  X follows Theorem 1; operationally, a decoded prefix of b_X
//         blocks extends to b_k iff every suffix count within the new
//         window suffices: D_{i,k} >= b_k - b_{i-1} for X < i <= k.
//
// The Monte-Carlo evaluator samples the multinomial counts directly — no
// Galois-field work — and serves as the scalable analysis backend for
// many-level PLC, standing in for the closed-form approximation of the
// paper's tech report (see DESIGN.md).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "codes/priority_spec.h"
#include "codes/scheme.h"
#include "util/random.h"

namespace prlc::analysis {

/// Decoded levels for SLC given per-level coded-block counts.
std::size_t slc_levels_from_counts(const codes::PrioritySpec& spec,
                                   std::span<const std::size_t> counts);

/// Decoded levels for PLC given per-level coded-block counts (Theorem 1,
/// greedy prefix extension).
std::size_t plc_levels_from_counts(const codes::PrioritySpec& spec,
                                   std::span<const std::size_t> counts);

/// Decoded levels for RLC: all-or-nothing at M >= N.
std::size_t rlc_levels_from_counts(const codes::PrioritySpec& spec,
                                   std::span<const std::size_t> counts);

/// Dispatch on scheme.
std::size_t levels_from_counts(codes::Scheme scheme, const codes::PrioritySpec& spec,
                               std::span<const std::size_t> counts);

/// One curve point estimated by count-model Monte Carlo.
struct CountCurvePoint {
  std::size_t coded_blocks = 0;
  double mean_levels = 0;
  double ci95_levels = 0;
};

/// Estimate E(X_M) for each M in `block_counts` (strictly increasing) by
/// sampling level counts from Multinomial(M, dist) — `trials` independent
/// streams, incrementally extended across the M grid.
std::vector<CountCurvePoint> mc_count_curve(codes::Scheme scheme,
                                            const codes::PrioritySpec& spec,
                                            const codes::PriorityDistribution& dist,
                                            std::span<const std::size_t> block_counts,
                                            std::size_t trials, std::uint64_t seed);

/// Convenience: single-point E(X_M) estimate.
CountCurvePoint mc_expected_levels(codes::Scheme scheme, const codes::PrioritySpec& spec,
                                   const codes::PriorityDistribution& dist, std::size_t coded_blocks,
                                   std::size_t trials, std::uint64_t seed);

}  // namespace prlc::analysis
