#include "analysis/count_model.h"

#include <numeric>

#include "util/check.h"
#include "util/stats.h"

namespace prlc::analysis {

std::size_t slc_levels_from_counts(const codes::PrioritySpec& spec,
                                   std::span<const std::size_t> counts) {
  PRLC_REQUIRE(counts.size() == spec.levels(), "count vector width mismatch");
  std::size_t k = 0;
  while (k < spec.levels() && counts[k] >= spec.level_size(k)) ++k;
  return k;
}

std::size_t plc_levels_from_counts(const codes::PrioritySpec& spec,
                                   std::span<const std::size_t> counts) {
  PRLC_REQUIRE(counts.size() == spec.levels(), "count vector width mismatch");
  const std::size_t n = spec.levels();
  // suffix_from[i] = D_{i+1,n} in paper terms = counts[i] + ... + counts[n-1].
  std::vector<std::size_t> suffix(n + 1, 0);
  for (std::size_t i = n; i-- > 0;) suffix[i] = suffix[i + 1] + counts[i];

  std::size_t decoded = 0;  // levels decoded so far (b_decoded blocks known)
  bool progressed = true;
  while (progressed && decoded < n) {
    progressed = false;
    // Try to extend the decoded prefix to the largest feasible k.
    for (std::size_t k = n; k > decoded; --k) {
      const std::size_t bk = spec.prefix_size(k - 1);
      // Condition of Lemma 2 relative to the already-decoded prefix: for
      // every level i in (decoded, k], blocks of levels i..k must supply
      // at least b_k - b_{i-1} equations on the undecoded unknowns.
      bool ok = true;
      for (std::size_t i = decoded; i < k; ++i) {
        // i is 0-indexed level; D_{i+1,k} = suffix[i] - suffix[k].
        const std::size_t d_ik = suffix[i] - suffix[k];
        const std::size_t need = bk - (i == 0 ? 0 : spec.prefix_size(i - 1));
        if (d_ik < need) {
          ok = false;
          break;
        }
      }
      if (ok) {
        decoded = k;
        progressed = true;
        break;
      }
    }
  }
  return decoded;
}

std::size_t rlc_levels_from_counts(const codes::PrioritySpec& spec,
                                   std::span<const std::size_t> counts) {
  PRLC_REQUIRE(counts.size() == spec.levels(), "count vector width mismatch");
  const std::size_t total = std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  return total >= spec.total() ? spec.levels() : 0;
}

std::size_t levels_from_counts(codes::Scheme scheme, const codes::PrioritySpec& spec,
                               std::span<const std::size_t> counts) {
  switch (scheme) {
    case codes::Scheme::kRlc:
      return rlc_levels_from_counts(spec, counts);
    case codes::Scheme::kSlc:
      return slc_levels_from_counts(spec, counts);
    case codes::Scheme::kPlc:
      return plc_levels_from_counts(spec, counts);
  }
  PRLC_ASSERT(false, "unknown scheme");
}

std::vector<CountCurvePoint> mc_count_curve(codes::Scheme scheme,
                                            const codes::PrioritySpec& spec,
                                            const codes::PriorityDistribution& dist,
                                            std::span<const std::size_t> block_counts,
                                            std::size_t trials, std::uint64_t seed) {
  PRLC_REQUIRE(!block_counts.empty(), "need at least one block count");
  PRLC_REQUIRE(trials > 0, "need at least one trial");
  PRLC_REQUIRE(dist.levels() == spec.levels(), "distribution/spec level mismatch");
  for (std::size_t i = 1; i < block_counts.size(); ++i) {
    PRLC_REQUIRE(block_counts[i - 1] < block_counts[i],
                 "block counts must be strictly increasing");
  }

  std::vector<RunningStats> stats(block_counts.size());
  Rng master(seed);
  std::vector<std::size_t> counts(spec.levels());
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng = master.split();
    std::fill(counts.begin(), counts.end(), 0);
    std::size_t drawn = 0;
    for (std::size_t point = 0; point < block_counts.size(); ++point) {
      while (drawn < block_counts[point]) {
        ++counts[dist.sample_level(rng)];
        ++drawn;
      }
      stats[point].add(static_cast<double>(levels_from_counts(scheme, spec, counts)));
    }
  }

  std::vector<CountCurvePoint> out(block_counts.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].coded_blocks = block_counts[i];
    out[i].mean_levels = stats[i].mean();
    out[i].ci95_levels = stats[i].ci95_halfwidth();
  }
  return out;
}

CountCurvePoint mc_expected_levels(codes::Scheme scheme, const codes::PrioritySpec& spec,
                                   const codes::PriorityDistribution& dist,
                                   std::size_t coded_blocks, std::size_t trials,
                                   std::uint64_t seed) {
  const std::size_t points[] = {coded_blocks};
  return mc_count_curve(scheme, spec, dist, points, trials, seed)[0];
}

}  // namespace prlc::analysis
