// Exact decoding-performance analysis for PLC (Sec. 3.3.2, Theorem 1).
//
// Pr(X = k) is the probability of the Theorem-1 event system:
//   suffix counts   D_{i,k}  >= b_k - b_{i-1}          for i = 1..k
//   prefix counts   D_{k+1,j} <= b_j - b_k - 1          for j = k+1..m
// with m = max{ i : b_i <= M }. Both families constrain *partial sums* of
// the multinomial counts, so each family is evaluated by a windowed
// convolve-and-mask DP over Poissonized level counts (group 1 processes
// levels k..1 masking suffix sums from below; group 2 processes levels
// k+1..m masking prefix sums from above), and the families combine
// through one final convolution with the unconstrained remainder — the
// Poissonization identity in poisson_dp.h.
//
// This is an *exact* evaluation of the Theorem-1 model (the paper's own
// numbers use an approximation that degrades as levels grow; see Fig.
// 4(b)). Cost is O(n * M^2) per (M, k) pair, so the exact backend is the
// right tool up to ~10 levels; for many levels use the count-model
// Monte-Carlo backend in count_model.h.
#pragma once

#include <vector>

#include "analysis/poisson_dp.h"
#include "codes/priority_spec.h"
#include "util/logprob.h"

namespace prlc::analysis {

class PlcAnalysis {
 public:
  PlcAnalysis(codes::PrioritySpec spec, codes::PriorityDistribution dist);

  /// Pr(X = k), k = 0..levels.
  double prob_exactly(std::size_t k, std::size_t coded_blocks);

  /// Full pmf over k = 0..levels (index k = levels decoded).
  std::vector<double> level_pmf(std::size_t coded_blocks);

  /// E(X).
  double expected_levels(std::size_t coded_blocks);

  /// Pr(X >= k); k = 0 returns 1.
  double prob_at_least(std::size_t k, std::size_t coded_blocks);

  /// Pr(X = levels): full recovery — constraint (10)'s quantity.
  double prob_decode_all(std::size_t coded_blocks);

  const codes::PrioritySpec& spec() const { return spec_; }
  const codes::PriorityDistribution& dist() const { return dist_; }

 private:
  codes::PrioritySpec spec_;
  codes::PriorityDistribution dist_;
  LogFactorialTable lfact_;
};

}  // namespace prlc::analysis
