// Exact decoding-performance analysis for SLC (Sec. 3.3.1).
//
// With M coded blocks whose levels are Multinomial(M; p), SLC decodes at
// least k levels iff D_i >= a_i for every i <= k, so
//
//   Pr(X >= k) = C(M) * [z^M] T_1(z) ... T_k(z) R_k(z)
//
// where T_i is the Poisson(M p_i) pmf polynomial masked to degrees >= a_i
// and R_k is the unmasked Poisson over the remaining levels' mass (see
// poisson_dp.h for the identity), and E(X) = sum_k Pr(X >= k).
// This matches the paper's equation (6) computed via the DP of [13] —
// with the idealized-field footnote 1 (rank deficiencies, O(1/q) per
// level, are ignored; GF(2^8) simulation confirms the error is invisible
// at the paper's scales).
#pragma once

#include <vector>

#include "analysis/poisson_dp.h"
#include "codes/priority_spec.h"
#include "util/logprob.h"

namespace prlc::analysis {

class SlcAnalysis {
 public:
  SlcAnalysis(codes::PrioritySpec spec, codes::PriorityDistribution dist);

  /// Pr(X >= k) for k = 1..levels; k = 0 returns 1.
  double prob_at_least(std::size_t k, std::size_t coded_blocks);

  /// All prefix probabilities Pr(X >= k), k = 1..levels, in one DP sweep.
  std::vector<double> prefix_probabilities(std::size_t coded_blocks);

  /// E(X): expected number of decoded levels from `coded_blocks` blocks.
  double expected_levels(std::size_t coded_blocks);

  /// Pr(X = levels): probability of full recovery — the constraint-(10)
  /// quantity Pr(X_{alpha N} = n).
  double prob_decode_all(std::size_t coded_blocks);

  const codes::PrioritySpec& spec() const { return spec_; }
  const codes::PriorityDistribution& dist() const { return dist_; }

 private:
  codes::PrioritySpec spec_;
  codes::PriorityDistribution dist_;
  LogFactorialTable lfact_;
};

}  // namespace prlc::analysis
