#include "analysis/planning.h"

#include <cmath>

#include "analysis/plc_analysis.h"
#include "analysis/slc_analysis.h"
#include "util/check.h"

namespace prlc::analysis {

namespace {

/// Pr(X_M >= k) through the scheme's exact backend.
double prob_at_least(codes::Scheme scheme, const codes::PrioritySpec& spec,
                     const codes::PriorityDistribution& dist, std::size_t k, std::size_t m) {
  switch (scheme) {
    case codes::Scheme::kSlc: {
      SlcAnalysis slc(spec, dist);
      return slc.prob_at_least(k, m);
    }
    case codes::Scheme::kPlc: {
      PlcAnalysis plc(spec, dist);
      return plc.prob_at_least(k, m);
    }
    case codes::Scheme::kRlc:
      return m >= spec.total() ? 1.0 : 0.0;
  }
  PRLC_ASSERT(false, "unknown scheme");
}

}  // namespace

std::optional<std::size_t> blocks_needed(codes::Scheme scheme, const codes::PrioritySpec& spec,
                                         const codes::PriorityDistribution& dist, std::size_t k,
                                         double confidence, std::size_t max_blocks) {
  PRLC_REQUIRE(k >= 1 && k <= spec.levels(), "target level out of range");
  PRLC_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");
  PRLC_REQUIRE(dist.levels() == spec.levels(), "distribution/spec level mismatch");
  PRLC_REQUIRE(max_blocks >= 1, "max_blocks must be positive");

  if (prob_at_least(scheme, spec, dist, k, max_blocks) < confidence) return std::nullopt;
  // Pr(X_M >= k) is monotone nondecreasing in M: bisect.
  std::size_t lo = spec.prefix_size(k - 1);  // fewer blocks than b_k can never decode k
  if (lo == 0) lo = 1;
  if (prob_at_least(scheme, spec, dist, k, lo) >= confidence) return lo;
  std::size_t hi = max_blocks;
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (prob_at_least(scheme, spec, dist, k, mid) >= confidence) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double tolerable_loss(codes::Scheme scheme, const codes::PrioritySpec& spec,
                      const codes::PriorityDistribution& dist, std::size_t k, double confidence,
                      std::size_t stored_blocks) {
  PRLC_REQUIRE(stored_blocks >= 1, "need at least one stored block");
  const auto needed = blocks_needed(scheme, spec, dist, k, confidence, stored_blocks);
  if (!needed.has_value()) return 0.0;
  // Keeping a uniform random subset of the stored blocks is again an
  // i.i.d. sample from the priority distribution (to first order), so the
  // threshold is simply needed/stored.
  return 1.0 - static_cast<double>(*needed) / static_cast<double>(stored_blocks);
}

double variance_levels(codes::Scheme scheme, const codes::PrioritySpec& spec,
                       const codes::PriorityDistribution& dist, std::size_t coded_blocks) {
  PRLC_REQUIRE(dist.levels() == spec.levels(), "distribution/spec level mismatch");
  double mean = 0.0;
  double second_moment = 0.0;
  for (std::size_t k = 1; k <= spec.levels(); ++k) {
    const double p = prob_at_least(scheme, spec, dist, k, coded_blocks);
    mean += p;
    second_moment += static_cast<double>(2 * k - 1) * p;
  }
  return std::max(0.0, second_moment - mean * mean);
}

}  // namespace prlc::analysis
