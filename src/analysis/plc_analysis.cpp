#include "analysis/plc_analysis.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace prlc::analysis {

PlcAnalysis::PlcAnalysis(codes::PrioritySpec spec, codes::PriorityDistribution dist)
    : spec_(std::move(spec)), dist_(std::move(dist)) {
  PRLC_REQUIRE(spec_.levels() == dist_.levels(), "spec/distribution level mismatch");
}

double PlcAnalysis::prob_exactly(std::size_t k, std::size_t M) {
  const std::size_t n = spec_.levels();
  PRLC_REQUIRE(k <= n, "level out of range");
  if (M == 0) return k == 0 ? 1.0 : 0.0;

  // b_k in paper terms (0 when k = 0).
  const std::size_t bk = k == 0 ? 0 : spec_.prefix_size(k - 1);
  if (bk > M) return 0.0;  // cannot have decoded more blocks than received

  // m = max { i : b_i <= M } (1-indexed level count reachable with M).
  const std::size_t m = spec_.levels_covered_by_prefix(M);
  if (k > m) return 0.0;

  const auto dM = static_cast<double>(M);

  // Group 1 — levels k..1 (1-indexed), suffix-sum constraints.
  SupportPoly g1 = SupportPoly::delta0();
  for (std::size_t i = k; i >= 1; --i) {
    const SupportPoly level = SupportPoly::poisson(dM * dist_.at(i - 1), M, lfact_);
    g1 = SupportPoly::convolve(g1, level, M);
    const std::size_t b_im1 = i == 1 ? 0 : spec_.prefix_size(i - 2);
    g1.zero_below(bk - b_im1);
    if (g1.is_zero()) return 0.0;
  }

  // Group 2 — levels k+1..m, prefix-sum constraints (capped from above).
  SupportPoly g2 = SupportPoly::delta0();
  for (std::size_t j = k + 1; j <= m; ++j) {
    const SupportPoly level = SupportPoly::poisson(dM * dist_.at(j - 1), M, lfact_);
    g2 = SupportPoly::convolve(g2, level, M);
    const std::size_t cap = spec_.prefix_size(j - 1) - bk - 1;  // b_j - b_k - 1
    g2.zero_above(cap);
    if (g2.is_zero()) return 0.0;
  }

  // Group 3 — levels m+1..n, unconstrained.
  double rest_mass = 0.0;
  for (std::size_t j = m; j < n; ++j) rest_mass += dist_.at(j);
  const SupportPoly g3 = SupportPoly::poisson(dM * rest_mass, M, lfact_);

  const SupportPoly g12 = SupportPoly::convolve(g1, g2, M);
  const double coeff = SupportPoly::convolve_at(g12, g3, M);
  const double log_c = log_multinomial_normalizer(M, lfact_);
  return std::clamp(std::exp(log_c) * coeff, 0.0, 1.0);
}

std::vector<double> PlcAnalysis::level_pmf(std::size_t M) {
  std::vector<double> pmf(spec_.levels() + 1, 0.0);
  for (std::size_t k = 0; k <= spec_.levels(); ++k) pmf[k] = prob_exactly(k, M);
  return pmf;
}

double PlcAnalysis::expected_levels(std::size_t M) {
  const auto pmf = level_pmf(M);
  double e = 0.0;
  for (std::size_t k = 1; k < pmf.size(); ++k) e += static_cast<double>(k) * pmf[k];
  return e;
}

double PlcAnalysis::prob_at_least(std::size_t k, std::size_t M) {
  PRLC_REQUIRE(k <= spec_.levels(), "level out of range");
  if (k == 0) return 1.0;
  double p = 0.0;
  for (std::size_t j = k; j <= spec_.levels(); ++j) p += prob_exactly(j, M);
  return std::min(p, 1.0);
}

double PlcAnalysis::prob_decode_all(std::size_t M) {
  return prob_exactly(spec_.levels(), M);
}

}  // namespace prlc::analysis
