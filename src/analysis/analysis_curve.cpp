#include "analysis/analysis_curve.h"

#include "analysis/count_model.h"
#include "analysis/plc_analysis.h"
#include "analysis/slc_analysis.h"
#include "util/check.h"

namespace prlc::analysis {

std::vector<AnalysisPoint> analysis_curve(codes::Scheme scheme, const codes::PrioritySpec& spec,
                                          const codes::PriorityDistribution& dist,
                                          std::span<const std::size_t> block_counts,
                                          const AnalysisCurveOptions& options) {
  PRLC_REQUIRE(!block_counts.empty(), "need at least one block count");
  std::vector<AnalysisPoint> out;
  out.reserve(block_counts.size());

  const bool plc_exact =
      scheme != codes::Scheme::kPlc || spec.levels() <= options.exact_level_limit;

  if (scheme == codes::Scheme::kRlc) {
    for (std::size_t m : block_counts) {
      out.push_back({m, m >= spec.total() ? static_cast<double>(spec.levels()) : 0.0, true});
    }
    return out;
  }

  if (scheme == codes::Scheme::kSlc) {
    SlcAnalysis slc(spec, dist);
    for (std::size_t m : block_counts) {
      out.push_back({m, slc.expected_levels(m), true});
    }
    return out;
  }

  if (plc_exact) {
    PlcAnalysis plc(spec, dist);
    for (std::size_t m : block_counts) {
      out.push_back({m, plc.expected_levels(m), true});
    }
    return out;
  }

  const auto mc =
      mc_count_curve(scheme, spec, dist, block_counts, options.mc_trials, options.mc_seed);
  for (const auto& point : mc) {
    out.push_back({point.coded_blocks, point.mean_levels, false});
  }
  return out;
}

}  // namespace prlc::analysis
