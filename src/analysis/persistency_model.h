// Analytic no-repair persistence model — the closed-form benchmark the
// cluster simulator is validated against.
//
// Model (the classic persistency setting of Friedman/Kapelko-style block
// survival analyses): every stored block sits on an independently chosen
// node; nodes fail as a Poisson process of per-node rate lambda with no
// repair, so by memorylessness each block independently survives to time
// t with probability p(t) = exp(-lambda * t). With M blocks apportioned
// over the priority levels, the per-level surviving counts are
// independent binomials, and the count model (analysis/count_model.h)
// turns counts into decoded levels:
//
//   SLC:          E[X(t)] = sum_k prod_{i<=k} Pr(Bin(m_i, p) >= a_i)
//   replication:  level i readable iff all a_i sources keep >= 1 of r
//                 copies: Pr = (1 - (1 - p)^r)^{a_i}; prefix-expectation
//                 as above.
//   PLC:          Theorem 1's joint prefix events do not factor per
//                 level; evaluated by count-model Monte Carlo instead
//                 (binomial level counts, no Galois-field work).
//
// The independence is exact when hosts are drawn with replacement (the
// simulator's placement) — two blocks sharing a node die together, but a
// uniform host draw makes each block's host fail independently at the
// same marginal rate, so the per-block survival indicator is iid whenever
// M << W keeps collisions negligible. The validation test runs exactly in
// that regime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "codes/priority_spec.h"
#include "codes/scheme.h"

namespace prlc::analysis {

/// Per-block survival probability at time t under rate-lambda exponential
/// lifetimes with no repair: exp(-lambda * t).
double block_survival(double churn_rate, double time);

/// Exact E[decoded levels] for SLC with per-level block counts
/// `level_blocks` (m_i coded blocks stored for level i) when each block
/// survives independently with probability `survival`.
double slc_expected_levels(const codes::PrioritySpec& spec,
                           std::span<const std::size_t> level_blocks, double survival);

/// Exact E[decoded levels] for r-way replication (every source block has
/// `replication_factor` independent copies), prefix semantics.
double replication_expected_levels(const codes::PrioritySpec& spec,
                                   std::size_t replication_factor, double survival);

/// Monte-Carlo E[decoded levels] for any scheme: sample independent
/// Bin(m_i, survival) level counts and push them through the count model.
/// The PLC path of the validation suite (no closed form factors).
double mc_expected_levels_at_survival(codes::Scheme scheme, const codes::PrioritySpec& spec,
                                      std::span<const std::size_t> level_blocks,
                                      double survival, std::size_t trials,
                                      std::uint64_t seed);

}  // namespace prlc::analysis
