#include "analysis/slc_analysis.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace prlc::analysis {

SlcAnalysis::SlcAnalysis(codes::PrioritySpec spec, codes::PriorityDistribution dist)
    : spec_(std::move(spec)), dist_(std::move(dist)) {
  PRLC_REQUIRE(spec_.levels() == dist_.levels(), "spec/distribution level mismatch");
}

std::vector<double> SlcAnalysis::prefix_probabilities(std::size_t M) {
  const std::size_t n = spec_.levels();
  std::vector<double> probs(n, 0.0);
  if (M == 0) return probs;

  const double log_c = log_multinomial_normalizer(M, lfact_);
  SupportPoly prefix = SupportPoly::delta0();
  double mass_used = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double mu_i = static_cast<double>(M) * dist_.at(i);
    SupportPoly level = SupportPoly::poisson(mu_i, M, lfact_);
    level.zero_below(spec_.level_size(i));
    prefix = SupportPoly::convolve(prefix, level, M);
    if (prefix.is_zero()) break;  // Pr(X >= j) = 0 for all j > i
    mass_used += dist_.at(i);
    const double mu_rest = static_cast<double>(M) * std::max(0.0, 1.0 - mass_used);
    const SupportPoly rest = SupportPoly::poisson(mu_rest, M, lfact_);
    const double coeff = SupportPoly::convolve_at(prefix, rest, M);
    probs[i] = std::clamp(std::exp(log_c) * coeff, 0.0, 1.0);
  }
  // Enforce monotonicity (guards against trim/rounding noise).
  for (std::size_t i = 1; i < n; ++i) probs[i] = std::min(probs[i], probs[i - 1]);
  return probs;
}

double SlcAnalysis::prob_at_least(std::size_t k, std::size_t M) {
  PRLC_REQUIRE(k <= spec_.levels(), "level out of range");
  if (k == 0) return 1.0;
  return prefix_probabilities(M)[k - 1];
}

double SlcAnalysis::expected_levels(std::size_t M) {
  const auto probs = prefix_probabilities(M);
  double e = 0.0;
  for (double p : probs) e += p;
  return e;
}

double SlcAnalysis::prob_decode_all(std::size_t M) {
  return prob_at_least(spec_.levels(), M);
}

}  // namespace prlc::analysis
