// Analytical decoding curves E(X_M) vs M, backend-dispatched.
//
// SLC always uses the exact polynomial DP. PLC uses the exact Theorem-1
// DP up to `exact_level_limit` levels, beyond which it switches to the
// count-model Monte-Carlo backend (the role the paper's tech-report
// approximation plays — see DESIGN.md substitutions). RLC is the trivial
// step function at M = N under the idealized-field model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codes/priority_spec.h"
#include "codes/scheme.h"

namespace prlc::analysis {

struct AnalysisPoint {
  std::size_t coded_blocks = 0;
  double expected_levels = 0;
  bool exact = true;  ///< false when the Monte-Carlo backend produced it
};

struct AnalysisCurveOptions {
  /// PLC switches from the exact DP to count-model MC above this many
  /// levels (the exact DP is O(n^2 M^2) per curve point).
  std::size_t exact_level_limit = 12;
  /// Trials for the MC backend.
  std::size_t mc_trials = 20000;
  std::uint64_t mc_seed = 0x9d5c6e71b2a4f083ULL;
};

/// E(X_M) for each M in `block_counts` (strictly increasing).
std::vector<AnalysisPoint> analysis_curve(codes::Scheme scheme, const codes::PrioritySpec& spec,
                                          const codes::PriorityDistribution& dist,
                                          std::span<const std::size_t> block_counts,
                                          const AnalysisCurveOptions& options = {});

}  // namespace prlc::analysis
