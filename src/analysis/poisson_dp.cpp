#include "analysis/poisson_dp.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace prlc::analysis {

SupportPoly SupportPoly::delta0() {
  SupportPoly p;
  p.lo_ = 0;
  p.v_ = {1.0};
  return p;
}

SupportPoly SupportPoly::poisson(double mu, std::size_t cap, LogFactorialTable& lfact) {
  PRLC_REQUIRE(mu >= 0.0, "Poisson mean must be nonnegative");
  SupportPoly p;
  if (mu == 0.0) return delta0();
  const double log_mu = std::log(mu);
  // Effective support: probable region around mu; computing the exact pmf
  // everywhere and trimming is O(cap) and simple.
  p.lo_ = 0;
  p.v_.assign(cap + 1, 0.0);
  for (std::size_t k = 0; k <= cap; ++k) {
    const double lp = static_cast<double>(k) * log_mu - mu - lfact(k);
    p.v_[k] = lp < -700.0 ? 0.0 : std::exp(lp);
  }
  p.trim();
  return p;
}

double SupportPoly::sum() const {
  double s = 0.0;
  for (double x : v_) s += x;
  return s;
}

void SupportPoly::zero_below(std::size_t k) {
  if (is_zero() || k <= lo_) return;
  if (k >= hi()) {
    v_.clear();
    lo_ = 0;
    return;
  }
  v_.erase(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(k - lo_));
  lo_ = k;
  trim();
}

void SupportPoly::zero_above(std::size_t k) {
  if (is_zero()) return;
  if (k + 1 <= lo_) {
    v_.clear();
    lo_ = 0;
    return;
  }
  if (k + 1 >= hi()) return;
  v_.resize(k + 1 - lo_);
  trim();
}

void SupportPoly::trim() {
  std::size_t front = 0;
  while (front < v_.size() && v_[front] < kTrimEps) ++front;
  std::size_t back = v_.size();
  while (back > front && v_[back - 1] < kTrimEps) --back;
  if (front == back) {
    v_.clear();
    lo_ = 0;
    return;
  }
  if (back < v_.size()) v_.resize(back);
  if (front > 0) {
    v_.erase(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(front));
    lo_ += front;
  }
}

SupportPoly SupportPoly::convolve(const SupportPoly& a, const SupportPoly& b, std::size_t cap) {
  SupportPoly out;
  if (a.is_zero() || b.is_zero()) return out;
  const std::size_t lo = a.lo_ + b.lo_;
  if (lo > cap) return out;
  const std::size_t hi = std::min(cap + 1, a.hi() + b.hi() - 1);
  out.lo_ = lo;
  out.v_.assign(hi - lo, 0.0);
  for (std::size_t i = 0; i < a.v_.size(); ++i) {
    const double ai = a.v_[i];
    if (ai < kTrimEps) continue;
    const std::size_t base = a.lo_ + i + b.lo_;
    if (base > cap) break;
    const std::size_t jmax = std::min(b.v_.size(), cap + 1 - base);
    double* dst = out.v_.data() + (base - lo);
    const double* src = b.v_.data();
    for (std::size_t j = 0; j < jmax; ++j) dst[j] += ai * src[j];
  }
  out.trim();
  return out;
}

double SupportPoly::convolve_at(const SupportPoly& a, const SupportPoly& b, std::size_t target) {
  if (a.is_zero() || b.is_zero()) return 0.0;
  double s = 0.0;
  // i over a's degrees with target - i inside b's window.
  const std::size_t i_lo = b.hi() > target + 1 ? a.lo_ : std::max(a.lo_, target + 1 - b.hi());
  const std::size_t i_hi = std::min<std::size_t>(a.hi(), target >= b.lo_ ? target - b.lo_ + 1 : 0);
  for (std::size_t i = i_lo; i < i_hi; ++i) {
    s += a.at(i) * b.at(target - i);
  }
  return s;
}

double log_multinomial_normalizer(std::size_t M, LogFactorialTable& lfact) {
  if (M == 0) return 0.0;
  const auto m = static_cast<double>(M);
  return lfact(M) + m - m * std::log(m);
}

}  // namespace prlc::analysis
