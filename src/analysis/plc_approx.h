// Product-form approximation of the PLC analysis — the fast, slightly
// biased analytical backend in the spirit of the paper's own.
//
// The paper computes Pr(X = k) from the Theorem-1 event system using
// approximations "to reduce computation complexity" (Sec. 3.3.2), and
// Fig. 4(b) shows the resulting analysis deviating from simulation as the
// level count grows. The natural approximation with that signature treats
// the Theorem-1 events as independent:
//
//   Pr(X = k) ~ prod_{i<=k} Pr(D_{i,k} >= b_k - b_{i-1})
//             * prod_{j>k}  Pr(D_{k+1,j} <= b_j - b_k - 1)
//
// with exact binomial marginals for the partial sums. Each factor is a
// one-dimensional binomial tail, so a whole decoding curve costs
// O(n^2 M) instead of the exact DP's O(n^2 M^2) per point — and the
// neglected correlations grow with the number of levels, reproducing the
// paper's qualitative error behaviour (accurate at 5 levels, visibly off
// at 50).
#pragma once

#include <vector>

#include "codes/priority_spec.h"
#include "util/logprob.h"

namespace prlc::analysis {

class PlcApproxAnalysis {
 public:
  PlcApproxAnalysis(codes::PrioritySpec spec, codes::PriorityDistribution dist);

  /// Approximate Pr(X = k).
  double prob_exactly(std::size_t k, std::size_t coded_blocks);

  /// Approximate pmf over k = 0..levels, renormalized to sum to 1 (the
  /// raw independent-event products need not).
  std::vector<double> level_pmf(std::size_t coded_blocks);

  /// Approximate E(X).
  double expected_levels(std::size_t coded_blocks);

  const codes::PrioritySpec& spec() const { return spec_; }

 private:
  codes::PrioritySpec spec_;
  codes::PriorityDistribution dist_;
  LogFactorialTable lfact_;
};

}  // namespace prlc::analysis
