// Planning queries on top of the decoding analysis: the inverse questions
// an operator actually asks.
//
//   * "How many surviving coded blocks do I need so that the first k
//     levels decode with probability >= conf?"  (blocks_needed)
//   * "What failure fraction can the deployment tolerate before level k
//     is at risk?"  (tolerable_loss — derived from blocks_needed and the
//     number of stored blocks)
//   * "How uncertain is the decoded-level count?"  (variance / stddev of
//     X via E[X^2] = sum (2k-1) Pr(X >= k))
//
// All exact for SLC; exact for PLC up to the Theorem-1 DP's practical
// level range (the same backends as analysis_curve).
#pragma once

#include <cstddef>
#include <optional>

#include "codes/priority_spec.h"
#include "codes/scheme.h"

namespace prlc::analysis {

/// Smallest M with Pr(X_M >= k) >= confidence; nullopt if not reachable
/// below `max_blocks` (e.g. a zero-weight level). Monotone bisection over
/// the exact analysis. Requires 1 <= k <= levels and confidence in (0,1).
std::optional<std::size_t> blocks_needed(codes::Scheme scheme, const codes::PrioritySpec& spec,
                                         const codes::PriorityDistribution& dist, std::size_t k,
                                         double confidence, std::size_t max_blocks);

/// Largest loss fraction f such that keeping ceil((1-f) * stored_blocks)
/// random blocks still decodes k levels with >= confidence; 0 when even
/// the full store cannot. Resolution 1/stored_blocks.
double tolerable_loss(codes::Scheme scheme, const codes::PrioritySpec& spec,
                      const codes::PriorityDistribution& dist, std::size_t k, double confidence,
                      std::size_t stored_blocks);

/// Var(X_M) under the exact analysis backends.
double variance_levels(codes::Scheme scheme, const codes::PrioritySpec& spec,
                       const codes::PriorityDistribution& dist, std::size_t coded_blocks);

}  // namespace prlc::analysis
