#include "analysis/plc_approx.h"

#include <algorithm>

#include "util/check.h"

namespace prlc::analysis {

PlcApproxAnalysis::PlcApproxAnalysis(codes::PrioritySpec spec, codes::PriorityDistribution dist)
    : spec_(std::move(spec)), dist_(std::move(dist)) {
  PRLC_REQUIRE(spec_.levels() == dist_.levels(), "spec/distribution level mismatch");
}

double PlcApproxAnalysis::prob_exactly(std::size_t k, std::size_t M) {
  const std::size_t n = spec_.levels();
  PRLC_REQUIRE(k <= n, "level out of range");
  if (M == 0) return k == 0 ? 1.0 : 0.0;

  const std::size_t bk = k == 0 ? 0 : spec_.prefix_size(k - 1);
  if (bk > M) return 0.0;
  const std::size_t m = spec_.levels_covered_by_prefix(M);
  if (k > m) return 0.0;

  double prob = 1.0;
  // Group 1: suffix counts D_{i,k} ~ Bin(M, p_i + ... + p_k).
  for (std::size_t i = 1; i <= k; ++i) {
    // range_sum can exceed 1 by an ulp when it spans everything.
    const double mass = std::clamp(dist_.range_sum(i - 1, k - 1), 0.0, 1.0);
    const std::size_t need = bk - (i == 1 ? 0 : spec_.prefix_size(i - 2));
    prob *= lfact_.binomial_tail_ge(M, mass, need);
    if (prob == 0.0) return 0.0;
  }
  // Group 2: prefix counts D_{k+1,j} ~ Bin(M, p_{k+1} + ... + p_j).
  for (std::size_t j = k + 1; j <= m; ++j) {
    const double mass = std::clamp(dist_.range_sum(k, j - 1), 0.0, 1.0);
    const std::size_t cap = spec_.prefix_size(j - 1) - bk - 1;
    prob *= 1.0 - lfact_.binomial_tail_ge(M, mass, cap + 1);
    if (prob == 0.0) return 0.0;
  }
  return std::clamp(prob, 0.0, 1.0);
}

std::vector<double> PlcApproxAnalysis::level_pmf(std::size_t M) {
  std::vector<double> pmf(spec_.levels() + 1, 0.0);
  double total = 0;
  for (std::size_t k = 0; k <= spec_.levels(); ++k) {
    pmf[k] = prob_exactly(k, M);
    total += pmf[k];
  }
  if (total > 0) {
    for (double& p : pmf) p /= total;
  }
  return pmf;
}

double PlcApproxAnalysis::expected_levels(std::size_t M) {
  const auto pmf = level_pmf(M);
  double e = 0;
  for (std::size_t k = 1; k < pmf.size(); ++k) e += static_cast<double>(k) * pmf[k];
  return e;
}

}  // namespace prlc::analysis
