#include "analysis/persistency_model.h"

#include <cmath>

#include "analysis/count_model.h"
#include "util/check.h"
#include "util/logprob.h"
#include "util/random.h"
#include "util/stats.h"

namespace prlc::analysis {

double block_survival(double churn_rate, double time) {
  PRLC_REQUIRE(churn_rate >= 0.0, "churn rate must be nonnegative");
  PRLC_REQUIRE(time >= 0.0, "time must be nonnegative");
  return std::exp(-churn_rate * time);
}

double slc_expected_levels(const codes::PrioritySpec& spec,
                           std::span<const std::size_t> level_blocks, double survival) {
  PRLC_REQUIRE(level_blocks.size() == spec.levels(),
               "per-level block counts must match the spec");
  PRLC_REQUIRE(survival >= 0.0 && survival <= 1.0, "survival must be a probability");
  // E[X] = sum_k Pr(X >= k) and the SLC events factor per level:
  // X >= k iff Bin(m_i, p) >= a_i for every i <= k.
  LogFactorialTable logfact;
  double expected = 0;
  double prefix_prob = 1.0;
  for (std::size_t i = 0; i < spec.levels(); ++i) {
    prefix_prob *= logfact.binomial_tail_ge(level_blocks[i], survival, spec.level_size(i));
    expected += prefix_prob;
    if (prefix_prob == 0.0) break;  // deeper prefixes are impossible too
  }
  return expected;
}

double replication_expected_levels(const codes::PrioritySpec& spec,
                                   std::size_t replication_factor, double survival) {
  PRLC_REQUIRE(replication_factor > 0, "need at least one copy per block");
  PRLC_REQUIRE(survival >= 0.0 && survival <= 1.0, "survival must be a probability");
  // A source block dies when all r copies die: q = (1-p)^r. Level i is
  // readable iff none of its a_i sources died, and sources are
  // independent, so the prefix expectation telescopes like SLC.
  const double source_alive =
      1.0 - std::pow(1.0 - survival, static_cast<double>(replication_factor));
  double expected = 0;
  double prefix_prob = 1.0;
  for (std::size_t i = 0; i < spec.levels(); ++i) {
    prefix_prob *= std::pow(source_alive, static_cast<double>(spec.level_size(i)));
    expected += prefix_prob;
    if (prefix_prob == 0.0) break;
  }
  return expected;
}

double mc_expected_levels_at_survival(codes::Scheme scheme, const codes::PrioritySpec& spec,
                                      std::span<const std::size_t> level_blocks,
                                      double survival, std::size_t trials,
                                      std::uint64_t seed) {
  PRLC_REQUIRE(level_blocks.size() == spec.levels(),
               "per-level block counts must match the spec");
  PRLC_REQUIRE(survival >= 0.0 && survival <= 1.0, "survival must be a probability");
  PRLC_REQUIRE(trials > 0, "need at least one trial");
  Rng rng(seed);
  RunningStats stats;
  std::vector<std::size_t> counts(spec.levels(), 0);
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < spec.levels(); ++i) {
      std::size_t alive = 0;
      for (std::size_t b = 0; b < level_blocks[i]; ++b) {
        if (rng.bernoulli(survival)) ++alive;
      }
      counts[i] = alive;
    }
    stats.add(static_cast<double>(levels_from_counts(scheme, spec, counts)));
  }
  return stats.mean();
}

}  // namespace prlc::analysis
