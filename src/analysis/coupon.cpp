#include "analysis/coupon.h"

#include <cmath>

#include "util/check.h"

namespace prlc::analysis {

double coupon_expected_draws(std::size_t n) {
  PRLC_REQUIRE(n > 0, "need at least one coupon");
  double harmonic = 0.0;
  for (std::size_t i = 1; i <= n; ++i) harmonic += 1.0 / static_cast<double>(i);
  return static_cast<double>(n) * harmonic;
}

double coupon_expected_distinct(std::size_t n, std::size_t draws) {
  PRLC_REQUIRE(n > 0, "need at least one coupon");
  const auto dn = static_cast<double>(n);
  const double miss = std::pow(1.0 - 1.0 / dn, static_cast<double>(draws));
  return dn * (1.0 - miss);
}

double coupon_prob_all_collected(std::size_t n, std::size_t draws) {
  PRLC_REQUIRE(n > 0, "need at least one coupon");
  const auto dn = static_cast<double>(n);
  const double seen = 1.0 - std::exp(-static_cast<double>(draws) / dn);
  return std::pow(seen, dn);
}

double coupon_expected_prefix(std::size_t n, std::size_t draws) {
  PRLC_REQUIRE(n > 0, "need at least one coupon");
  const auto dn = static_cast<double>(n);
  const double r = 1.0 - std::exp(-static_cast<double>(draws) / dn);
  if (r >= 1.0) return dn;
  // sum_{k=1..n} r^k = r (1 - r^n) / (1 - r)
  return r * (1.0 - std::pow(r, dn)) / (1.0 - r);
}

}  // namespace prlc::analysis
