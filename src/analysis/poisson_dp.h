// Windowed polynomial arithmetic over truncated Poisson pmfs — the
// numerical core of the Sec. 3.3 analysis.
//
// Multinomial constraint probabilities are computed by the classic
// Poissonization identity: if (D_1..D_n) ~ Multinomial(M; p) then for any
// event E that is a product of per-level / partial-sum constraints,
//
//   Pr(E) = C(M) * [z^M] prod_i G_i(z),   C(M) = M! e^M / M^M,
//
// where G_i is the pmf polynomial of an independent Poisson(M*p_i)
// variable with the constraint applied as a coefficient mask. C(M) =
// 1/Pr(Pois(M) = M) ~ sqrt(2*pi*M) is perfectly stable in log space.
// This is the same dynamic-programming-with-convolutions idea as the
// Kontkanen-Myllymaki algorithm the paper cites ([13]); plain windowed
// convolution is fast enough at the paper's scales, so no FFT is needed.
#pragma once

#include <cstddef>
#include <vector>

#include "util/logprob.h"

namespace prlc::analysis {

/// Dense nonnegative polynomial with an explicit support window:
/// coefficient of z^(lo+i) is v[i]. Negligible tails are trimmed so that
/// convolutions only touch the probable region.
class SupportPoly {
 public:
  /// The zero polynomial.
  SupportPoly() = default;

  /// delta at z^0 (the empty product).
  static SupportPoly delta0();

  /// Poisson(mu) pmf over degrees 0..cap (inclusive), trimmed.
  static SupportPoly poisson(double mu, std::size_t cap, LogFactorialTable& lfact);

  bool is_zero() const { return v_.empty(); }
  std::size_t lo() const { return lo_; }
  /// One past the highest stored degree.
  std::size_t hi() const { return lo_ + v_.size(); }

  /// Coefficient of z^degree (0 outside the window).
  double at(std::size_t degree) const {
    if (degree < lo_ || degree >= hi()) return 0.0;
    return v_[degree - lo_];
  }

  double sum() const;

  /// Zero all coefficients of degree < k (a ">= k" constraint mask).
  void zero_below(std::size_t k);

  /// Zero all coefficients of degree > k (a "<= k" constraint mask).
  /// zero_above(-1-like semantics) is expressed by k == SIZE_MAX no-op.
  void zero_above(std::size_t k);

  /// Drop negligible (< kTrimEps) leading/trailing coefficients.
  void trim();

  /// Product truncated to degrees <= cap.
  static SupportPoly convolve(const SupportPoly& a, const SupportPoly& b, std::size_t cap);

  /// Coefficient of z^target in a*b, without materializing the product.
  static double convolve_at(const SupportPoly& a, const SupportPoly& b, std::size_t target);

  static constexpr double kTrimEps = 1e-290;

 private:
  std::size_t lo_ = 0;
  std::vector<double> v_;
};

/// ln C(M) = ln(M!) + M - M ln M; C(0) = 1.
double log_multinomial_normalizer(std::size_t M, LogFactorialTable& lfact);

}  // namespace prlc::analysis
