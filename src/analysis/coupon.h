// Coupon-collector baseline (no coding).
//
// Sec. 5.2 observes that SLC with one source block per level degenerates
// to plain replication, where recovering all N blocks needs O(N ln N)
// random blocks — the coupon-collector effect. These helpers quantify
// that baseline for Fig. 6 commentary and the ablation benches.
//
// Probabilities use the Poissonized model (draw count ~ Poisson(M), which
// makes per-coupon counts independent) — the same regime the rest of the
// analysis engine works in; the error is O(1/sqrt(M)) and invisible at
// the paper's scales. Expectations of linear statistics are exact.
#pragma once

#include <cstddef>

namespace prlc::analysis {

/// E[draws to collect all N coupons] = N * H_N (exact).
double coupon_expected_draws(std::size_t n);

/// E[# distinct coupons after M uniform draws] = N (1 - (1 - 1/N)^M)
/// (exact).
double coupon_expected_distinct(std::size_t n, std::size_t draws);

/// Pr(all N coupons collected after M draws) = (1 - e^{-M/N})^N under
/// Poissonization.
double coupon_prob_all_collected(std::size_t n, std::size_t draws);

/// E[length of the longest collected prefix 1..k after M draws] =
/// sum_{k>=1} r^k with r = 1 - e^{-M/N} under Poissonization — the
/// no-coding analogue of the decoded-prefix metric.
double coupon_expected_prefix(std::size_t n, std::size_t draws);

}  // namespace prlc::analysis
