// Designing a priority distribution from survival requirements (Sec. 3.4).
//
// An application states its needs as decoding constraints: "if only M_i
// random coded blocks survive, I still want the first k_i tiers back (in
// expectation)". The feasibility solver turns those into the fractions of
// network storage each tier should get, and the exact analysis plots the
// resulting decoding curve — no simulation needed.
//
// Build & run:  cmake --build build && ./build/examples/design_distribution
#include <iostream>

#include "analysis/plc_analysis.h"
#include "design/feasibility.h"
#include "util/table_printer.h"

using namespace prlc;

int main() {
  // 200 blocks in tiers {20, 60, 120}. Requirements: 70 surviving blocks
  // should usually yield tier 1 (E >= 0.9); 220 should yield tiers 1-2
  // (E >= 1.9); recovering everything from 3N blocks must be
  // near-certain. The uniform distribution fails the first requirement
  // (E[X_70] ~ 0.83), so the solver has to shift storage toward tier 1 —
  // without starving tiers 2-3, whose constraints still bind.
  design::FeasibilityProblem problem;
  problem.scheme = codes::Scheme::kPlc;
  problem.spec = codes::PrioritySpec({20, 60, 120});
  problem.decoding = {{70, 0.9}, {220, 1.9}};
  problem.full_recovery = design::FullRecoveryConstraint{3.0, 0.01};

  const auto result = design::solve_feasibility(problem);
  std::cout << (result.feasible ? "feasible" : "NOT feasible") << " after "
            << result.evaluations << " analysis evaluations across " << result.starts_used
            << " start(s)\n\npriority distribution (fraction of coded blocks per tier):\n";
  for (std::size_t i = 0; i < result.distribution.size(); ++i) {
    std::cout << "  tier " << i + 1 << ": p = " << fmt_double(result.distribution[i], 4)
              << "\n";
  }
  std::cout << "\nachieved: E[X_70] = " << fmt_double(result.report.achieved_levels[0], 3)
            << ", E[X_220] = " << fmt_double(result.report.achieved_levels[1], 3)
            << ", Pr[full recovery from 600] = "
            << fmt_double(result.report.achieved_full_recovery.value_or(0), 4) << "\n\n";

  // Plot the decoding curve of the designed distribution via the exact
  // Theorem-1 analysis.
  analysis::PlcAnalysis plc(problem.spec,
                            codes::PriorityDistribution{std::vector<double>(result.distribution)});
  TablePrinter table({"surviving coded blocks", "expected decoded tiers"});
  for (std::size_t m = 20; m <= 260; m += 20) {
    table.add_row({std::to_string(m), fmt_double(plc.expected_levels(m), 3)});
  }
  std::cout << table.to_text();

  // What-if: can we also demand tier 1 from just 25 blocks? (b_1 = 20,
  // so 25 random blocks rarely contain 20 of tier 1 unless p1 ~ 1 — the
  // solver should report infeasibility together with how close it got.)
  problem.decoding = {{25, 1.0}, {220, 1.9}};
  const auto hard = design::solve_feasibility(problem);
  std::cout << "\nstress requirement (25 blocks -> tier 1): "
            << (hard.feasible ? "feasible" : "not feasible") << ", best E[X_25] = "
            << fmt_double(hard.report.achieved_levels[0], 3)
            << " — requirements must respect b_1 <= M_i head-room.\n";
  return 0;
}
