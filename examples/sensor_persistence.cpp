// Sensor-network data persistence — the paper's headline scenario.
//
// A field of 400 sensors measures the environment; readings are tiered
// (alarms > aggregates > raw samples) and pre-distributed with the Sec. 4
// protocol over GPSR-style geographic routing. Waves of sensors die; after
// each wave a collector walks the surviving storage locations and decodes
// what it can. Alarms survive deepest into the failure sweep.
//
// Build & run:  cmake --build build && ./build/examples/sensor_persistence
#include <iostream>

#include "codes/decoder.h"
#include "net/churn.h"
#include "net/sensor_network.h"
#include "proto/collector.h"
#include "proto/predistribution.h"
#include "util/table_printer.h"

using namespace prlc;

int main() {
  // 150 readings: 15 alarms, 45 hourly aggregates, 90 raw samples.
  const codes::PrioritySpec spec({15, 45, 90});
  // Hand-tuned priority distribution: a third of the network's storage
  // guards the alarms (use design::solve_feasibility to derive one from
  // explicit survival targets — see examples/design_distribution.cpp).
  const codes::PriorityDistribution dist({0.34, 0.33, 0.33});

  net::SensorParams field;
  field.nodes = 400;
  field.locations = 300;  // 2x the data volume, spread over the field
  field.seed = 42;
  field.two_choices = true;  // balance storage load
  net::SensorNetwork overlay(field);
  std::cout << "deployed " << field.nodes << " sensors, radio radius "
            << overlay.radius() << ", " << field.locations
            << " seed-derived storage locations\n";

  proto::ProtocolParams protocol;
  protocol.scheme = codes::Scheme::kPlc;
  protocol.block_size = 16;
  protocol.sparse = true;  // O(ln N) dissemination per coded block

  Rng rng(4242);
  const auto readings =
      codes::SourceData<proto::Field>::random(spec.total(), protocol.block_size, rng);
  proto::Predistribution predist(overlay, spec, dist, protocol);
  const auto stats = predist.disseminate(readings, rng);
  std::cout << "disseminated " << stats.messages << " block deliveries, "
            << stats.total_hops << " radio hops total, max node load "
            << stats.max_node_load << " blocks\n\n";

  TablePrinter table({"sensors dead", "blocks retrievable", "levels decoded",
                      "alarms?", "aggregates?", "raw?"});
  for (double wave : {0.0, 0.3, 0.5, 0.65, 0.8, 0.9}) {
    // Kill up to `wave` of the original population (cumulative).
    const double alive_frac =
        static_cast<double>(overlay.alive_count()) / static_cast<double>(field.nodes);
    const double target_alive = 1.0 - wave;
    if (alive_frac > target_alive) {
      net::kill_uniform_fraction(overlay, 1.0 - target_alive / alive_frac, rng);
    }
    codes::PriorityDecoder<proto::Field> decoder(protocol.scheme, spec, protocol.block_size);
    const auto result = proto::collect(predist, decoder, {}, rng).result;
    table.add_row({fmt_double(wave * 100, 0) + "%",
                   std::to_string(result.surviving_locations),
                   std::to_string(result.decoded_levels),
                   decoder.is_level_decoded(0) ? "yes" : "lost",
                   decoder.is_level_decoded(1) ? "yes" : "lost",
                   decoder.is_level_decoded(2) ? "yes" : "lost"});
  }
  std::cout << table.to_text()
            << "\nPriority coding at work: the alarm tier outlives the raw samples.\n";
  return 0;
}
