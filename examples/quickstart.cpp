// Quickstart — priority random linear codes in ~60 lines.
//
// Twelve measurement blocks in three priority tiers are encoded with PLC
// (Progressive Linear Codes). As coded blocks trickle into the decoder,
// the most important data becomes readable first — the partial-recovery
// property that plain RLC lacks.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>
#include <string>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "gf/gf256.h"
#include "util/random.h"

using namespace prlc;
using Field = gf::Gf256;

int main() {
  // 12 source blocks: 2 critical, 4 important, 6 routine. Each block is
  // an 8-byte payload (pretend sensor readings).
  const codes::PrioritySpec spec({2, 4, 6});
  Rng rng(2007);  // ICDCS vintage
  const auto source = codes::SourceData<Field>::random(spec.total(), 8, rng);

  // A PLC encoder over the source data, and fractions of coded blocks per
  // level: half the redundancy guards the two critical blocks.
  const codes::PriorityEncoder<Field> encoder(codes::Scheme::kPlc, spec, {}, &source);
  const codes::PriorityDistribution dist({0.5, 0.3, 0.2});

  // Stream random coded blocks into the progressive decoder, exactly as a
  // data-collecting server would receive them from surviving nodes.
  codes::PriorityDecoder<Field> decoder(codes::Scheme::kPlc, spec, source.block_size());
  std::size_t last_levels = 0;
  for (std::size_t received = 1; received <= 48 && decoder.decoded_levels() < 3; ++received) {
    decoder.add(encoder.encode_random(dist, rng));
    if (decoder.decoded_levels() != last_levels) {
      last_levels = decoder.decoded_levels();
      std::cout << "after " << received << " coded blocks: decoded priority levels 1.."
                << last_levels << " (" << decoder.decoded_prefix_blocks() << "/"
                << spec.total() << " source blocks)\n";
    }
  }

  // Verify the recovered payloads are the original data, byte for byte.
  std::size_t verified = 0;
  for (std::size_t j = 0; j < decoder.decoded_prefix_blocks(); ++j) {
    const auto got = decoder.recovered(j);
    const auto want = source.block(j);
    if (std::equal(got.begin(), got.end(), want.begin(), want.end())) ++verified;
  }
  std::cout << verified << " recovered blocks verified against the originals.\n"
            << "Compare: plain RLC would have decoded nothing until "
            << spec.total() << " blocks arrived.\n";
  return 0;
}
