// Periodic measurement rounds under a fixed storage budget.
//
// A 300-peer DHT archives one snapshot of tiered metrics per epoch. The
// network can hold 480 coded blocks total, peers churn between epochs,
// and the exponential-decay retention policy makes snapshots age
// gracefully: as a round's storage share shrinks it gives up raw samples
// first, then aggregates, keeping alarms decodable the longest.
//
// Build & run:  cmake --build build && ./build/examples/timeline_rounds
#include <iostream>

#include "net/chord_network.h"
#include "net/churn.h"
#include "proto/timeline.h"
#include "util/table_printer.h"

using namespace prlc;

int main() {
  const codes::PrioritySpec spec({8, 16, 36});  // 60 metric blocks per round
  const codes::PriorityDistribution dist({0.4, 0.3, 0.3});

  net::ChordParams ring;
  ring.nodes = 300;
  ring.locations = 480;  // the total storage budget
  ring.seed = 99;
  net::ChordNetwork overlay(ring);

  proto::TimelineParams params;
  params.block_size = 16;
  params.window = 5;
  params.policy = proto::RetentionPolicy::kExponentialDecay;
  proto::TimelineStore store(overlay, spec, dist, params);

  Rng rng(909);
  std::cout << "ingesting 8 measurement rounds (12% of peers churn per epoch,\n"
               "half of departed peers return empty)...\n\n";
  for (int round = 0; round < 8; ++round) {
    const auto snap =
        codes::SourceData<proto::Field>::random(spec.total(), params.block_size, rng);
    const auto stats = store.ingest(snap, rng);
    net::apply_session_churn(overlay, 0.12, 0.5, rng);
    if (round == 0 || round == 7) {
      std::cout << "round " << stats.round_id << ": " << stats.locations_assigned
                << " locations assigned (" << stats.locations_recycled
                << " recycled from older rounds, " << stats.rounds_evicted << " evicted)\n";
    }
  }

  TablePrinter table({"round", "age", "storage share", "blocks retrievable",
                      "alarms?", "aggregates?", "raw samples?"});
  for (std::size_t id : store.retained_rounds()) {
    const auto q = store.query(id, rng);
    if (!q.has_value()) continue;
    table.add_row({std::to_string(q->round_id), std::to_string(q->age),
                   std::to_string(q->locations_allotted),
                   std::to_string(q->blocks_retrievable),
                   q->decoded_levels >= 1 ? "yes" : "lost",
                   q->decoded_levels >= 2 ? "yes" : "lost",
                   q->decoded_levels >= 3 ? "yes" : "lost"});
  }
  std::cout << "\n" << table.to_text()
            << "\nGraceful aging: old rounds lose detail tiers first, never the\n"
               "alarms — and rounds older than the window are gone by design.\n";
  return 0;
}
