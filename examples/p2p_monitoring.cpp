// P2P session monitoring over a Chord-style DHT — the paper's second
// motivating scenario (Sec. 1: monitoring live streaming sessions without
// a central logging server, which "may morph into a de facto DDoS").
//
// 250 peers log streaming metrics in three tiers: session-health alerts,
// per-peer rate summaries, and verbose traces. Metrics are priority-coded
// into the overlay itself; peers churn away with exponential lifetimes;
// an operator later dials in and decodes — stopping as soon as the tier
// they care about is complete.
//
// Build & run:  cmake --build build && ./build/examples/p2p_monitoring
#include <iostream>

#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "proto/collector.h"
#include "proto/predistribution.h"
#include "util/table_printer.h"

using namespace prlc;

int main() {
  // 240 metric blocks: 20 alerts, 60 rate summaries, 160 trace chunks.
  const codes::PrioritySpec spec({20, 60, 160});
  const codes::PriorityDistribution dist({0.3, 0.3, 0.4});

  net::ChordParams ring;
  ring.nodes = 250;
  ring.locations = 480;  // 2x the data volume, spread around the ring
  ring.seed = 77;
  ring.two_choices = true;
  net::ChordNetwork overlay(ring);

  proto::ProtocolParams protocol;
  protocol.scheme = codes::Scheme::kPlc;
  protocol.block_size = 32;
  protocol.sparse = true;

  Rng rng(777);
  const auto metrics =
      codes::SourceData<proto::Field>::random(spec.total(), protocol.block_size, rng);
  proto::Predistribution predist(overlay, spec, dist, protocol);
  const auto stats = predist.disseminate(metrics, rng);
  std::cout << "pre-distributed " << spec.total() << " metric blocks into the DHT: "
            << stats.messages << " lookups, "
            << fmt_double(static_cast<double>(stats.total_hops) /
                              static_cast<double>(stats.messages),
                          2)
            << " hops per lookup (O(log W) fingers)\n\n";

  // Peers churn with memoryless session lengths: mean lifetime 30 min,
  // simulated in three 15-minute epochs.
  TablePrinter table({"epoch", "peers alive", "blocks retrievable",
                      "blocks pulled for alerts", "alert tier complete?"});
  for (int epoch = 1; epoch <= 3; ++epoch) {
    net::apply_exponential_churn(overlay, 30.0, 15.0, rng);
    // The operator only needs tier 1 (alerts) right now: the collector
    // stops as soon as the decoder's strict-priority prefix covers it.
    codes::PriorityDecoder<proto::Field> decoder(protocol.scheme, spec, protocol.block_size);
    proto::CollectorOptions opt;
    opt.target_levels = 1;
    const auto result = proto::collect(predist, decoder, opt, rng).result;
    table.add_row({std::to_string(epoch * 15) + " min", std::to_string(overlay.alive_count()),
                   std::to_string(result.surviving_locations),
                   std::to_string(result.blocks_retrieved),
                   result.target_met ? "yes" : "NO"});
  }
  std::cout << table.to_text()
            << "\nEarly stopping: the operator never pulls the whole archive just to\n"
               "read the alert tier — the progressive decoder tells it when to stop.\n";
  return 0;
}
