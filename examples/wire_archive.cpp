// Archiving coded blocks to disk with the wire format.
//
// A gateway snapshots a priority-coded archive to a file (each coded
// block framed with the PRLC wire format), the file suffers damage —
// truncated tail, one flipped byte — and a later restore decodes whatever
// frames survive, important tiers first. Demonstrates the integrity
// checking a production deployment needs between "bytes on flash" and
// the decoder.
//
// Build & run:  cmake --build build && ./build/examples/wire_archive
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/wire_format.h"
#include "gf/gf256.h"
#include "util/random.h"

using namespace prlc;
using Field = gf::Gf256;

namespace {

// Each frame is prefixed with its u32 length so the archive is seekable.
void append_frame(std::vector<std::uint8_t>& archive, const std::vector<std::uint8_t>& frame) {
  const auto len = static_cast<std::uint32_t>(frame.size());
  for (int shift = 0; shift < 32; shift += 8) {
    archive.push_back(static_cast<std::uint8_t>(len >> shift));
  }
  archive.insert(archive.end(), frame.begin(), frame.end());
}

}  // namespace

int main() {
  const codes::PrioritySpec spec({8, 16, 24});  // 48 readings in 3 tiers
  const codes::PriorityDistribution dist({0.4, 0.3, 0.3});
  Rng rng(1234);
  const auto source = codes::SourceData<Field>::random(spec.total(), 12, rng);
  const codes::PriorityEncoder<Field> encoder(codes::Scheme::kPlc, spec, {}, &source);

  // Write 96 coded blocks (2x redundancy) into an in-memory archive, then
  // to disk.
  std::vector<std::uint8_t> archive;
  for (int i = 0; i < 96; ++i) {
    append_frame(archive,
                 codes::encode_wire(codes::Scheme::kPlc, encoder.encode_random(dist, rng)));
  }
  const auto path = std::filesystem::temp_directory_path() / "prlc_archive.bin";
  std::ofstream(path, std::ios::binary)
      .write(reinterpret_cast<const char*>(archive.data()),
             static_cast<std::streamsize>(archive.size()));
  std::cout << "archived 96 coded blocks (" << archive.size() << " bytes) to " << path << "\n";

  // Damage: lose the last 30% of the file and flip one byte in an early
  // frame.
  std::vector<std::uint8_t> damaged(archive.begin(),
                                    archive.begin() + static_cast<std::ptrdiff_t>(
                                                          archive.size() * 7 / 10));
  damaged[200] ^= 0x01;
  std::cout << "damage: truncated to " << damaged.size() << " bytes, flipped byte 200\n\n";

  // Restore: walk frames, skip anything that fails validation.
  codes::PriorityDecoder<Field> decoder(codes::Scheme::kPlc, spec, source.block_size());
  std::size_t ok = 0;
  std::size_t rejected = 0;
  std::size_t pos = 0;
  while (pos + 4 <= damaged.size()) {
    std::uint32_t len = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      len |= static_cast<std::uint32_t>(damaged[pos++]) << shift;
    }
    if (pos + len > damaged.size()) break;  // truncated tail frame
    try {
      const auto frame = codes::decode_wire(
          std::span<const std::uint8_t>(damaged.data() + pos, len));
      decoder.add(frame.block);
      ++ok;
    } catch (const codes::WireFormatError& e) {
      ++rejected;  // the flipped-byte frame lands here
    }
    pos += len;
  }
  std::cout << "restore: " << ok << " frames decoded, " << rejected
            << " rejected by CRC, tail truncated mid-frame\n";
  std::cout << "recovered priority tiers: 1.." << decoder.decoded_levels() << " ("
            << decoder.decoded_prefix_blocks() << "/" << spec.total() << " readings)\n";

  // Verify the recovered tier against the original data.
  bool all_match = true;
  for (std::size_t j = 0; j < decoder.decoded_prefix_blocks(); ++j) {
    const auto got = decoder.recovered(j);
    const auto want = source.block(j);
    all_match = all_match && std::equal(got.begin(), got.end(), want.begin(), want.end());
  }
  std::cout << (all_match ? "every recovered reading verified byte-for-byte\n"
                          : "VERIFICATION FAILED\n");
  std::filesystem::remove(path);
  return all_match ? 0 : 1;
}
