#!/usr/bin/env bash
# Build and run the tier-1 test suite under AddressSanitizer + UBSan.
#
# The GF(2^8) SIMD kernels do unaligned vector loads and hand-rolled tail
# handling — exactly the code where out-of-bounds reads hide — so CI (or a
# developer, before touching src/gf) should run this script in addition to
# the plain test suite. The hybrid peeling/GE decoder's differential fuzz
# (test_linalg: sparse row merges, densification, batched window growth)
# runs in this ASan/UBSan phase as part of the full suite.
#
#   tools/run_sanitizers.sh            # build into build-sanitize/ and test
#   BUILD_DIR=/tmp/san tools/run_sanitizers.sh
#   tools/run_sanitizers.sh -R test_gf # extra args are forwarded to ctest
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build-sanitize}"
jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DPRLC_SANITIZE=address;undefined"
cmake --build "${build_dir}" -j"${jobs}"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"

ctest --test-dir "${build_dir}" --output-on-failure -j"${jobs}" "$@"
echo "sanitizer run OK (${build_dir})"

# Phase 2: ThreadSanitizer over the concurrent code: the obs metrics/trace
# layers (relaxed atomics + one mutex) and the runtime thread pool /
# trial runner. TSan runs just those suites plus two multi-threaded bench
# smokes rather than paying the 5-20x slowdown across everything. TSan is
# incompatible with ASan, hence the separate build tree.
#
# The fault-injection suites (test_net fault model, test_proto channel +
# resilient collector) run under ASan/UBSan as part of the full ctest
# phase above; the abl_fault smoke below additionally exercises the
# fault channel + retry/hedge paths across worker threads under TSan.
tsan_build_dir="${TSAN_BUILD_DIR:-${repo_root}/build-tsan}"

cmake -B "${tsan_build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPRLC_SANITIZE=thread
cmake --build "${tsan_build_dir}" -j"${jobs}" \
  --target test_obs --target test_obs_noalloc --target test_runtime \
  --target test_codec --target test_codes --target test_proto --target test_sim \
  --target abl_persistence_e2e --target abl_fault --target abl_cluster_lifetime \
  --target abl_integrity

# test_codec drives the dependency-counting OpGraph executor (the codec's
# multithreaded data plane) across pools of 1/2/8 workers — the prime
# TSan target this repo has.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
ctest --test-dir "${tsan_build_dir}" --output-on-failure -j"${jobs}" \
  -R '^test_obs$|^test_obs_noalloc$|^test_runtime$|^test_codec$'
# The telemetry determinism tests run parallel trials that record into the
# event journal and time-series rings — the exact thread-local-handoff
# code TSan exists to vet.
"${tsan_build_dir}/tests/test_proto" \
  --gtest_filter='TelemetryDeterminism.*' > /dev/null
PRLC_BENCH_FAST=1 "${tsan_build_dir}/bench/abl_persistence_e2e" \
  --threads 4 --trials 64 \
  --events-jsonl "${tsan_build_dir}/persistence_events.jsonl" \
  --timeseries-jsonl "${tsan_build_dir}/persistence_ts.jsonl" > /dev/null
PRLC_BENCH_FAST=1 "${tsan_build_dir}/bench/abl_fault" \
  --threads 4 --trials 32 \
  --events-jsonl "${tsan_build_dir}/fault_events.jsonl" \
  --timeseries-jsonl "${tsan_build_dir}/fault_ts.jsonl" > /dev/null
# Hybrid sparse-vs-dense decode driven through the TrialRunner at 1/2/8
# worker threads: each trial owns its decoder, so the only shared state is
# the runner's work distribution — exactly what TSan should vet.
"${tsan_build_dir}/tests/test_codes" \
  --gtest_filter='DecodingCurve.ThreadCountDoesNotChangeResults:DecodingCurve.SparseBlocksMatchDenseBlocksAcrossThreads' \
  > /dev/null
# Cluster-simulator lifetimes sharded across TrialRunner threads: each
# trial owns its event queue, membership bitmap and failure process, and
# the per-trial telemetry buffers hand off to the global recorders at
# merge time — the same handoff pattern as the telemetry suite, now under
# the simulator's much higher event volume.
"${tsan_build_dir}/tests/test_sim" \
  --gtest_filter='ClusterSim.ThreadCountNeverChangesResults' > /dev/null
PRLC_BENCH_FAST=1 "${tsan_build_dir}/bench/abl_cluster_lifetime" \
  --threads 8 \
  --json "${tsan_build_dir}/cluster.json" > /dev/null
# Integrity path under TSan: fingerprint verification + quarantine inside
# the sharded collector trials, and the scrubber/rot event machinery in
# the cluster simulator, both at 8 worker threads. The parallel-vs-serial
# in-process gates run under ASan/UBSan in the full phase above.
"${tsan_build_dir}/tests/test_proto" \
  --gtest_filter='IntegrityExperiment.ThreadCountNeverChangesResults' > /dev/null
"${tsan_build_dir}/tests/test_sim" \
  --gtest_filter='ClusterSim.RotTrialsReplayBitIdenticallyAtAnyThreadCount' > /dev/null
PRLC_BENCH_FAST=1 "${tsan_build_dir}/bench/abl_integrity" \
  --threads 8 --seed 777 \
  --json "${tsan_build_dir}/integrity.json" \
  --events-jsonl "${tsan_build_dir}/integrity_events.jsonl" > /dev/null
echo "tsan run OK (${tsan_build_dir})"
