// prlc — command-line driver for the library's experiments.
//
// Subcommands:
//   curve    simulate a decoding curve (GF(2^8))
//              prlc curve --scheme plc --levels 50,100,350 --dist 0.3,0.3,0.4
//                         --from 50 --to 1000 --points 12 --trials 30
//   analyze  analytical decoding curve (exact DP / count-model MC)
//              prlc analyze --scheme slc --levels 200,200,200,200,200
//   design   feasibility search for a priority distribution
//              prlc design --levels 50,100,350 --constraints 130:1,950:2
//                          --alpha 2 --eps 0.01
//   persist  end-to-end overlay experiment (pre-distribution + churn)
//              prlc persist --overlay chord --nodes 300 --levels 20,40,60
//                           --failures 0.2,0.5,0.8 --trials 10
//   timeline rounds of periodic snapshots under a fixed storage budget
//              prlc timeline --levels 10,20,30 --rounds 8 --window 4
//                            --policy decay --churn 0.1
//   metrics  run a small instrumented encode/decode round-trip, print a
//            span profile, and dump the metrics registry as JSON;
//            --timeseries-out / --events-out export the telemetry JSONL
//              prlc metrics --levels 8,16 --out metrics.json
//                           --timeseries-out ts.jsonl --events-out ev.jsonl
//
// Every subcommand accepts --seed; curve and persist also accept
// --threads (0 = one per hardware thread, 1 = serial; results do not
// depend on the thread count). Unknown flags are reported; malformed
// flag values exit 64 with a usage message.
#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "analysis/analysis_curve.h"
#include "codes/decoder.h"
#include "codes/decoding_curve.h"
#include "codes/encoder.h"
#include "design/feasibility.h"
#include "gf/gf256.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "proto/persistence_experiment.h"
#include "proto/timeline.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

/// Bad flag values are usage errors (exit 64 with a message), not
/// PRLC_REQUIRE aborts: main catches this separately.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

codes::Scheme scheme_from(const Flags& flags) {
  const std::string name = flags.get_string("scheme", "plc");
  const auto scheme = codes::try_scheme_from_string(name);
  if (!scheme) throw UsageError("--scheme wants rlc, slc or plc, got '" + name + "'");
  return *scheme;
}

codes::PrioritySpec spec_from(const Flags& flags, const char* fallback = "50,100,350") {
  const std::string text = flags.get_string("levels", fallback);
  auto spec = codes::try_spec_from_string(text);
  if (!spec) {
    throw UsageError("--levels wants comma-separated positive sizes, got '" + text + "'");
  }
  return *std::move(spec);
}

std::size_t threads_from(const Flags& flags) {
  const auto threads = flags.get_int("threads", 0);
  if (threads < 0) throw UsageError("--threads wants a nonnegative integer");
  return static_cast<std::size_t>(threads);
}

std::size_t trials_from(const Flags& flags, std::int64_t fallback) {
  const auto trials = flags.get_int("trials", fallback);
  if (trials <= 0) throw UsageError("--trials wants a positive integer");
  return static_cast<std::size_t>(trials);
}

codes::PriorityDistribution dist_from(const Flags& flags, std::size_t levels) {
  const auto values = flags.get_double_list("dist", {});
  if (values.empty()) return codes::PriorityDistribution::uniform(levels);
  return codes::PriorityDistribution{std::vector<double>(values)};
}

std::vector<std::size_t> grid_from(const Flags& flags, std::size_t total) {
  const auto from = static_cast<std::size_t>(flags.get_int("from", 1));
  const auto to =
      static_cast<std::size_t>(flags.get_int("to", static_cast<std::int64_t>(2 * total)));
  const auto points = static_cast<std::size_t>(flags.get_int("points", 12));
  return codes::make_block_counts(from, to, points);
}

int cmd_curve(const Flags& flags) {
  const auto spec = spec_from(flags);
  const auto scheme = scheme_from(flags);
  codes::CurveOptions opt;
  opt.block_counts = grid_from(flags, spec.total());
  opt.trials = trials_from(flags, 30);
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opt.threads = threads_from(flags);
  if (flags.get_bool("sparse", false)) {
    opt.encoder.model = codes::CoefficientModel::kSparse;
    opt.encoder.sparsity_factor = flags.get_double("sparsity-factor", 3.0);
  }
  const auto dist = dist_from(flags, spec.levels());
  const auto curve = codes::simulate_decoding_curve<gf::Gf256>(scheme, spec, dist, opt);
  TablePrinter table({"coded blocks", "E[levels] (95% CI)", "E[block prefix]"});
  for (const auto& p : curve) {
    table.add_row({std::to_string(p.coded_blocks), fmt_mean_ci(p.mean_levels, p.ci95_levels),
                   fmt_double(p.mean_blocks, 1)});
  }
  table.emit("cli_curve");
  return 0;
}

int cmd_analyze(const Flags& flags) {
  const auto spec = spec_from(flags);
  const auto scheme = scheme_from(flags);
  const auto dist = dist_from(flags, spec.levels());
  analysis::AnalysisCurveOptions opt;
  opt.mc_trials = static_cast<std::size_t>(flags.get_int("mc-trials", 20000));
  opt.mc_seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto grid = grid_from(flags, spec.total());
  const auto curve = analysis::analysis_curve(scheme, spec, dist, grid, opt);
  TablePrinter table({"coded blocks", "E[levels]", "backend"});
  for (const auto& p : curve) {
    table.add_row({std::to_string(p.coded_blocks), fmt_double(p.expected_levels, 4),
                   p.exact ? "exact" : "monte-carlo"});
  }
  table.emit("cli_analyze");
  return 0;
}

int cmd_design(const Flags& flags) {
  design::FeasibilityProblem problem;
  problem.spec = spec_from(flags);
  problem.scheme = scheme_from(flags);
  // --constraints M1:k1,M2:k2,...
  const std::string raw = flags.get_string("constraints", "130:1,950:2");
  std::stringstream ss(raw);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      throw UsageError("--constraints entries must look like M:k, got '" + item + "'");
    }
    try {
      problem.decoding.push_back({static_cast<std::size_t>(std::stoul(item.substr(0, colon))),
                                  std::stod(item.substr(colon + 1))});
    } catch (const std::exception&) {
      throw UsageError("--constraints entry is not numeric: '" + item + "'");
    }
  }
  if (flags.get_double("alpha", 2.0) > 0) {
    problem.full_recovery = design::FullRecoveryConstraint{
        flags.get_double("alpha", 2.0), flags.get_double("eps", 0.01)};
  }
  const auto result = design::solve_feasibility(problem);
  std::cout << (result.feasible ? "FEASIBLE" : "infeasible (best effort shown)") << " — "
            << result.evaluations << " evaluations\n";
  TablePrinter table({"level", "p"});
  for (std::size_t i = 0; i < result.distribution.size(); ++i) {
    table.add_row({std::to_string(i + 1), fmt_double(result.distribution[i], 4)});
  }
  table.emit("cli_design");
  for (std::size_t i = 0; i < problem.decoding.size(); ++i) {
    std::cout << "E[X_" << problem.decoding[i].coded_blocks
              << "] = " << fmt_double(result.report.achieved_levels[i], 3)
              << " (required " << fmt_double(problem.decoding[i].min_levels, 2) << ")\n";
  }
  if (result.report.achieved_full_recovery) {
    std::cout << "Pr[full recovery] = " << fmt_double(*result.report.achieved_full_recovery, 4)
              << "\n";
  }
  return result.feasible ? 0 : 2;
}

int cmd_persist(const Flags& flags) {
  proto::PersistenceParams params;
  const std::string overlay = flags.get_string("overlay", "chord");
  if (overlay != "chord" && overlay != "sensor") {
    throw UsageError("--overlay must be chord|sensor, got '" + overlay + "'");
  }
  params.overlay =
      overlay == "chord" ? proto::OverlayKind::kChord : proto::OverlayKind::kSensor;
  params.nodes = static_cast<std::size_t>(flags.get_int("nodes", 300));
  params.locations = static_cast<std::size_t>(flags.get_int("locations", 0));
  params.two_choices = flags.get_bool("two-choices", false);
  params.protocol.sparse = flags.get_bool("sparse", false);
  for (double f : flags.get_double_list("failures", {0.0, 0.25, 0.5, 0.75, 0.9})) {
    params.failure_fractions.push_back(f);
  }
  const auto spec = spec_from(flags, "20,40,60");
  params.experiment.level_sizes.assign(spec.level_sizes().begin(), spec.level_sizes().end());
  params.experiment.scheme = scheme_from(flags);
  params.experiment.trials = trials_from(flags, 10);
  params.experiment.root_seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  params.experiment.threads = threads_from(flags);
  const auto points = proto::run_persistence_experiment(params);
  TablePrinter table({"failure fraction", "surviving blocks", "decoded levels (95% CI)",
                      "decoded block prefix"});
  for (const auto& p : points) {
    table.add_row({fmt_double(p.failure_fraction, 2), fmt_double(p.mean_surviving_blocks, 1),
                   fmt_mean_ci(p.mean_decoded_levels, p.ci95_decoded_levels, 2),
                   fmt_double(p.mean_decoded_blocks, 1)});
  }
  table.emit("cli_persist");
  return 0;
}

int cmd_timeline(const Flags& flags) {
  const auto spec = spec_from(flags, "10,20,30");
  const auto dist = dist_from(flags, spec.levels());
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 8));
  const double churn = flags.get_double("churn", 0.1);
  if (churn < 0.0 || churn >= 1.0) throw UsageError("--churn must be in [0,1)");

  net::ChordParams np;
  np.nodes = static_cast<std::size_t>(flags.get_int("nodes", 300));
  np.locations = static_cast<std::size_t>(
      flags.get_int("locations", static_cast<std::int64_t>(4 * spec.total())));
  np.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  net::ChordNetwork overlay(np);

  proto::TimelineParams params;
  params.scheme = scheme_from(flags);
  params.window = static_cast<std::size_t>(flags.get_int("window", 4));
  const std::string policy = flags.get_string("policy", "window");
  if (policy != "window" && policy != "decay") {
    throw UsageError("--policy must be window|decay, got '" + policy + "'");
  }
  params.policy = policy == "window" ? proto::RetentionPolicy::kSlidingWindow
                                     : proto::RetentionPolicy::kExponentialDecay;
  proto::TimelineStore store(overlay, spec, dist, params);

  Rng rng(np.seed ^ 0x7e11);
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto snap =
        codes::SourceData<proto::Field>::random(spec.total(), params.block_size, rng);
    store.ingest(snap, rng);
    if (churn > 0) net::kill_uniform_fraction(overlay, churn, rng);
  }

  TablePrinter table({"round", "age", "storage share", "blocks retrievable",
                      "decoded levels", "decoded blocks"});
  for (std::size_t id : store.retained_rounds()) {
    const auto q = store.query(id, rng);
    if (!q.has_value()) continue;
    table.add_row({std::to_string(q->round_id), std::to_string(q->age),
                   std::to_string(q->locations_allotted),
                   std::to_string(q->blocks_retrievable), std::to_string(q->decoded_levels),
                   std::to_string(q->decoded_blocks)});
  }
  table.emit("cli_timeline");
  return 0;
}

int cmd_metrics(const Flags& flags) {
  // The point of this subcommand is to see the probes fire, so arm them
  // before any field op (that also captures the kernel dispatch gauges).
  obs::set_enabled(true);
  obs::set_events_enabled(true);
  obs::set_timeseries_enabled(true);
  obs::TraceRecorder::global().start();

  const auto spec = spec_from(flags, "8,16,24");
  const auto scheme = scheme_from(flags);
  const auto block_size = static_cast<std::size_t>(flags.get_int("block-size", 64));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));

  auto& ts = obs::TimeSeriesRecorder::global();
  ts.watch("decoder.rows_received");
  ts.watch("decoder.rows_innovative");
  ts.watch("decoder.rows_redundant");
  ts.watch("decoder.prefix_watermark");

  // Small encode/decode round-trip with payloads: encoder draws, field
  // kernels, and the progressive decoder's innovative/redundant split all
  // light up in the dump.
  const auto source = codes::SourceData<gf::Gf256>::random(spec.total(), block_size, rng);
  const codes::PriorityEncoder<gf::Gf256> enc(scheme, spec, {}, &source);
  const auto dist = codes::PriorityDistribution::uniform(spec.levels());
  codes::PriorityDecoder<gf::Gf256> dec(scheme, spec, block_size);
  std::size_t blocks = 0;
  {
    // One telemetry trial covers the whole round-trip; logical time is
    // the coded-block index, so the decoder series read as
    // decode-progress curves (blocks in vs. watermark out). The scope
    // must close before the exports below: rings flush on close.
    const obs::TrialScope telemetry(obs::begin_telemetry_run(), 0);
    while (dec.decoded_prefix_blocks() < spec.total() && blocks < 4 * spec.total()) {
      obs::set_logical_time(blocks);
      auto coded = [&] {
        const obs::ScopedSpan span("encode_block", "cli");
        return enc.encode_random(dist, rng);
      }();
      {
        const obs::ScopedSpan span("decode_block", "cli");
        dec.add(std::move(coded));
      }
      ts.tick(blocks);
      ++blocks;
    }
  }
  std::cout << "round-trip: " << spec.total() << " source blocks, " << blocks
            << " coded blocks, " << dec.decoded_levels() << "/" << spec.levels()
            << " levels decoded\n";

  obs::TraceRecorder::global().stop();
  std::cout << "span profile (self/total):\n"
            << obs::profile_to_text(obs::build_profile(obs::TraceRecorder::global()));

  const std::string out = flags.get_string("out", "");
  if (out.empty()) {
    std::cout << obs::Registry::global().to_json() << "\n";
  } else {
    PRLC_REQUIRE(obs::Registry::global().write_json(out),
                 "cannot write metrics to '" + out + "'");
    std::cout << "metrics json: " << out << "\n";
  }
  const std::string timeseries_out = flags.get_string("timeseries-out", "");
  if (!timeseries_out.empty()) {
    PRLC_REQUIRE(ts.write_jsonl(timeseries_out),
                 "cannot write timeseries to '" + timeseries_out + "'");
    std::cout << "timeseries jsonl: " << timeseries_out << "\n";
  }
  const std::string events_out = flags.get_string("events-out", "");
  if (!events_out.empty()) {
    PRLC_REQUIRE(obs::EventJournal::global().write(events_out),
                 "cannot write events to '" + events_out + "'");
    std::cout << "events jsonl: " << events_out << "\n";
  }
  return 0;
}

int usage() {
  std::cerr << "usage: prlc <curve|analyze|design|persist|timeline|metrics> [--flags]\n"
               "see the header of tools/prlc_cli.cpp for per-command flags\n";
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Flags flags = Flags::parse(argc - 2, argv + 2);
  try {
    int rc;
    if (cmd == "curve") {
      rc = cmd_curve(flags);
    } else if (cmd == "analyze") {
      rc = cmd_analyze(flags);
    } else if (cmd == "design") {
      rc = cmd_design(flags);
    } else if (cmd == "persist") {
      rc = cmd_persist(flags);
    } else if (cmd == "timeline") {
      rc = cmd_timeline(flags);
    } else if (cmd == "metrics") {
      rc = cmd_metrics(flags);
    } else {
      return usage();
    }
    for (const auto& name : flags.unused()) {
      std::cerr << "warning: unused flag --" << name << "\n";
    }
    return rc;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  } catch (const PreconditionError& e) {
    // Every precondition a CLI run can violate traces back to a flag
    // value (the commands build all inputs from flags), so report it as
    // a usage error rather than an internal failure.
    std::cerr << "error: " << e.what() << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
