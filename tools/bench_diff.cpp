// prlc_bench_diff — cross-PR perf regression tracking.
//
// Usage:
//   prlc_bench_diff [options] baseline.json fresh.json
//   prlc_bench_diff --self-test baseline.json
//
// Compares a fresh BenchReport (--json output) against a committed
// BENCH_*.json baseline. Two classes of comparison:
//
//   * noisy metrics — anything that measures time or throughput
//     (decode_ns, ns_per_equation, bytes_per_s, real_time, cpu_time,
//     speedup, iterations, *_us): compared with a relative tolerance
//     (--tolerance, default 0.6, i.e. a 2x slowdown is flagged but normal
//     machine-to-machine jitter is not).
//   * everything else — simulation outputs are deterministic for a fixed
//     config, so all other numerics, strings and bools must match
//     exactly; a mismatch is reported as drift.
//
// Series are matched by name, points by index; a missing series, a
// point-count mismatch, or a field present on one side only is a
// *structural* mismatch. Exit codes: 0 ok, 1 structural mismatch,
// 2 metric drift. --soft prints the verdict but always exits 0 (the
// ctest soft gate: visible in the log, never blocks the build).
// --verdict <path> additionally writes a machine-readable verdict JSON.
//
// --self-test baseline.json checks the tool itself: the baseline must
// diff clean against itself, and must *fail* against a copy whose noisy
// metrics are all scaled 2x (an injected 2x slowdown).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace {

using prlc::json::Value;

struct Flagged {
  std::string series;
  std::size_t point = 0;
  std::string metric;
  double base = 0;
  double fresh = 0;
  double rel_change = 0;
  bool structural = false;
  std::string note;
};

struct DiffResult {
  std::vector<Flagged> flagged;
  std::size_t checked = 0;

  bool structural() const {
    for (const Flagged& f : flagged) {
      if (f.structural) return true;
    }
    return false;
  }
  bool drift() const {
    for (const Flagged& f : flagged) {
      if (!f.structural) return true;
    }
    return false;
  }
  const char* status() const {
    if (structural()) return "mismatch";
    if (drift()) return "drift";
    return "ok";
  }
};

/// A metric is "noisy" when it measures wall time or throughput — the only
/// values that legitimately differ between two runs of the same config.
bool is_noisy_metric(std::string_view name) {
  static constexpr std::string_view kSuffixes[] = {"_ns", "_us", "_s"};
  for (const std::string_view s : kSuffixes) {
    if (name.size() >= s.size() && name.substr(name.size() - s.size()) == s) return true;
  }
  static constexpr std::string_view kSubstrings[] = {
      "ns_per", "_per_s", "per_second", "real_time", "cpu_time",
      "speedup", "iterations", "elapsed",
  };
  for (const std::string_view s : kSubstrings) {
    if (name.find(s) != std::string_view::npos) return true;
  }
  return false;
}

double rel_change(double base, double fresh) {
  if (base == fresh) return 0.0;
  const double denom = std::fabs(base);
  if (denom == 0.0) return std::numeric_limits<double>::infinity();
  return std::fabs(fresh - base) / denom;
}

const Value* find_series(const Value& report, std::string_view name) {
  const Value* series = report.find("series");
  if (series == nullptr || !series->is_array()) return nullptr;
  for (std::size_t i = 0; i < series->size(); ++i) {
    const Value& entry = series->at(i);
    const Value* n = entry.find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) return &entry;
  }
  return nullptr;
}

void diff_point(const std::string& series, std::size_t index, const Value& base,
                const Value& fresh, double tolerance, DiffResult& out) {
  for (const auto& [key, base_field] : base.members()) {
    const Value* fresh_field = fresh.find(key);
    if (fresh_field == nullptr) {
      out.flagged.push_back(
          {series, index, key, 0, 0, 0, true, "field missing from fresh report"});
      continue;
    }
    ++out.checked;
    if (base_field.is_number() && fresh_field->is_number()) {
      const double b = base_field.as_double();
      const double f = fresh_field->as_double();
      const double change = rel_change(b, f);
      if (is_noisy_metric(key)) {
        if (change > tolerance) {
          out.flagged.push_back({series, index, key, b, f, change, false,
                                 "relative change exceeds tolerance"});
        }
      } else if (b != f) {
        // Deterministic output: any numeric difference is drift.
        out.flagged.push_back(
            {series, index, key, b, f, change, false, "deterministic value changed"});
      }
    } else if (base_field.kind() != fresh_field->kind()) {
      out.flagged.push_back({series, index, key, 0, 0, 0, true, "field kind changed"});
    } else if (base_field.dump(-1) != fresh_field->dump(-1)) {
      out.flagged.push_back(
          {series, index, key, 0, 0, 0, false, "non-numeric value changed"});
    }
  }
  for (const auto& [key, fresh_field] : fresh.members()) {
    if (base.find(key) == nullptr) {
      out.flagged.push_back(
          {series, index, key, 0, 0, 0, true, "field missing from baseline"});
    }
  }
}

DiffResult diff_reports(const Value& base, const Value& fresh, double tolerance) {
  DiffResult out;
  const Value* base_series = base.find("series");
  if (base_series == nullptr || !base_series->is_array()) {
    out.flagged.push_back({"", 0, "series", 0, 0, 0, true, "baseline has no series array"});
    return out;
  }
  for (std::size_t i = 0; i < base_series->size(); ++i) {
    const Value& entry = base_series->at(i);
    const Value* name = entry.find("name");
    const std::string series_name =
        name != nullptr && name->is_string() ? name->as_string() : std::to_string(i);
    const Value* fresh_entry = find_series(fresh, series_name);
    if (fresh_entry == nullptr) {
      out.flagged.push_back(
          {series_name, 0, "", 0, 0, 0, true, "series missing from fresh report"});
      continue;
    }
    const Value* base_points = entry.find("points");
    const Value* fresh_points = fresh_entry->find("points");
    if (base_points == nullptr || fresh_points == nullptr ||
        !base_points->is_array() || !fresh_points->is_array()) {
      out.flagged.push_back({series_name, 0, "", 0, 0, 0, true, "points array missing"});
      continue;
    }
    if (base_points->size() != fresh_points->size()) {
      out.flagged.push_back({series_name, 0, "", 0, 0, 0, true,
                             "point count changed (" +
                                 std::to_string(base_points->size()) + " vs " +
                                 std::to_string(fresh_points->size()) + ")"});
      continue;
    }
    for (std::size_t p = 0; p < base_points->size(); ++p) {
      diff_point(series_name, p, base_points->at(p), fresh_points->at(p), tolerance, out);
    }
  }
  // Series present only in the fresh report: structural too — the
  // baseline should be regenerated, not silently extended.
  const Value* fresh_series = fresh.find("series");
  if (fresh_series != nullptr && fresh_series->is_array()) {
    for (std::size_t i = 0; i < fresh_series->size(); ++i) {
      const Value* name = fresh_series->at(i).find("name");
      if (name == nullptr || !name->is_string()) continue;
      if (find_series(base, name->as_string()) == nullptr) {
        out.flagged.push_back(
            {name->as_string(), 0, "", 0, 0, 0, true, "series missing from baseline"});
      }
    }
  }
  return out;
}

Value verdict_to_value(const std::string& baseline_path, const std::string& fresh_path,
                       const DiffResult& result) {
  Value root = Value::object();
  root.set("baseline", baseline_path);
  root.set("fresh", fresh_path);
  root.set("status", result.status());
  root.set("checked", static_cast<std::uint64_t>(result.checked));
  Value flagged = Value::array();
  for (const Flagged& f : result.flagged) {
    Value entry = Value::object();
    entry.set("series", f.series);
    entry.set("point", static_cast<std::uint64_t>(f.point));
    entry.set("metric", f.metric);
    entry.set("structural", f.structural);
    if (!f.structural) {
      entry.set("base", f.base);
      entry.set("fresh", f.fresh);
      entry.set("rel_change", f.rel_change);
    }
    entry.set("note", f.note);
    flagged.push_back(std::move(entry));
  }
  root.set("flagged", std::move(flagged));
  return root;
}

void print_result(const std::string& baseline_path, const std::string& fresh_path,
                  const DiffResult& result) {
  std::printf("prlc_bench_diff: %s vs %s: %s (%zu fields checked, %zu flagged)\n",
              baseline_path.c_str(), fresh_path.c_str(), result.status(), result.checked,
              result.flagged.size());
  for (const Flagged& f : result.flagged) {
    if (f.structural) {
      std::printf("  [structural] %s point %zu %s: %s\n", f.series.c_str(), f.point,
                  f.metric.c_str(), f.note.c_str());
    } else if (f.rel_change > 0) {
      std::printf("  [drift] %s point %zu %s: %g -> %g (%+.0f%%): %s\n", f.series.c_str(),
                  f.point, f.metric.c_str(), f.base, f.fresh, 100.0 * f.rel_change,
                  f.note.c_str());
    } else {
      std::printf("  [drift] %s point %zu %s: %s\n", f.series.c_str(), f.point,
                  f.metric.c_str(), f.note.c_str());
    }
  }
}

/// Scale every noisy metric 2x — the injected regression --self-test
/// expects the diff to flag.
Value degrade(const Value& v, bool under_noisy_key = false) {
  if (v.is_object()) {
    Value out = Value::object();
    for (const auto& [key, member] : v.members()) {
      out.set(key, degrade(member, is_noisy_metric(key)));
    }
    return out;
  }
  if (v.is_array()) {
    Value out = Value::array();
    for (std::size_t i = 0; i < v.size(); ++i) {
      out.push_back(degrade(v.at(i), under_noisy_key));
    }
    return out;
  }
  if (v.is_number() && under_noisy_key) {
    return Value(v.as_double() * 2.0);
  }
  return v;
}

int self_test(const std::string& baseline_path, double tolerance) {
  Value base;
  try {
    base = Value::parse(prlc::json::read_file(baseline_path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prlc_bench_diff: %s: %s\n", baseline_path.c_str(), e.what());
    return 1;
  }

  const DiffResult clean = diff_reports(base, base, tolerance);
  if (std::strcmp(clean.status(), "ok") != 0) {
    std::fprintf(stderr, "prlc_bench_diff: self-test FAILED: baseline does not diff "
                         "clean against itself (%s)\n",
                 clean.status());
    print_result(baseline_path, baseline_path, clean);
    return 1;
  }

  const Value degraded = degrade(base);
  const DiffResult slow = diff_reports(base, degraded, tolerance);
  if (!slow.drift()) {
    std::fprintf(stderr, "prlc_bench_diff: self-test FAILED: 2x-degraded copy was not "
                         "flagged as drift (status %s)\n",
                 slow.status());
    return 1;
  }
  std::printf("prlc_bench_diff: self-test ok (%zu fields clean, %zu flagged after 2x "
              "degradation)\n",
              clean.checked, slow.flagged.size());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: prlc_bench_diff [--tolerance <rel>] [--soft] [--verdict out.json]\n"
               "                       baseline.json fresh.json\n"
               "       prlc_bench_diff --self-test baseline.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.6;
  bool soft = false;
  bool run_self_test = false;
  std::string verdict_path;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--soft") {
      soft = true;
    } else if (arg == "--self-test") {
      run_self_test = true;
    } else if (arg == "--tolerance") {
      if (i + 1 >= argc) {
        usage();
        return 1;
      }
      tolerance = std::atof(argv[++i]);
    } else if (arg.starts_with("--tolerance=")) {
      tolerance = std::atof(std::string(arg.substr(12)).c_str());
    } else if (arg == "--verdict") {
      if (i + 1 >= argc) {
        usage();
        return 1;
      }
      verdict_path = argv[++i];
    } else if (arg.starts_with("--verdict=")) {
      verdict_path = arg.substr(10);
    } else if (arg.starts_with("--")) {
      std::fprintf(stderr, "prlc_bench_diff: unknown flag '%s'\n", argv[i]);
      usage();
      return 1;
    } else {
      files.emplace_back(arg);
    }
  }
  if (tolerance <= 0.0) {
    std::fprintf(stderr, "prlc_bench_diff: --tolerance must be positive\n");
    return 1;
  }

  if (run_self_test) {
    if (files.size() != 1) {
      usage();
      return 1;
    }
    return self_test(files[0], tolerance);
  }

  if (files.size() != 2) {
    usage();
    return 1;
  }

  Value base, fresh;
  try {
    base = Value::parse(prlc::json::read_file(files[0]));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prlc_bench_diff: %s: %s\n", files[0].c_str(), e.what());
    return 1;
  }
  try {
    fresh = Value::parse(prlc::json::read_file(files[1]));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prlc_bench_diff: %s: %s\n", files[1].c_str(), e.what());
    return 1;
  }

  const DiffResult result = diff_reports(base, fresh, tolerance);
  print_result(files[0], files[1], result);
  if (!verdict_path.empty()) {
    try {
      prlc::json::write_file(verdict_path,
                             verdict_to_value(files[0], files[1], result).dump(2));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "prlc_bench_diff: %s: %s\n", verdict_path.c_str(), e.what());
      return 1;
    }
  }
  if (soft) {
    if (std::strcmp(result.status(), "ok") != 0) {
      std::printf("prlc_bench_diff: --soft: reporting %s without failing\n",
                  result.status());
    }
    return 0;
  }
  if (result.structural()) return 1;
  if (result.drift()) return 2;
  return 0;
}
