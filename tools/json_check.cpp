// prlc_json_check — validate machine-readable outputs in the smoke tests.
//
// Usage: prlc_json_check [--jsonl] [--require p1,p2,...] file.json [...]
//        prlc_json_check --self-test
//
// Each file must parse as strict JSON; each --require entry is a
// '/'-separated path that must resolve inside every file ('/' rather than
// '.' because metric names themselves contain dots, e.g.
// "counters/decoder.rows_innovative"). A numeric component indexes an
// array. Exit 0 when everything holds, 1 with a diagnostic otherwise.
//
// --jsonl treats each file as JSON Lines (the telemetry exports): every
// nonempty line must parse as a complete JSON document, and each
// --require path must resolve in every line.
//
// --self-test round-trips hostile strings (control characters, invalid
// UTF-8, lone surrogates' encodings) through escape() and the parser —
// the regression check for the writer's string hardening.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

const prlc::json::Value* resolve(const prlc::json::Value& root, const std::string& path) {
  const prlc::json::Value* v = &root;
  for (const std::string& part : split(path, '/')) {
    if (v->is_array()) {
      char* end = nullptr;
      const unsigned long idx = std::strtoul(part.c_str(), &end, 10);
      if (end != part.c_str() + part.size() || idx >= v->size()) return nullptr;
      v = &v->at(static_cast<std::size_t>(idx));
    } else if (v->is_object()) {
      v = v->find(part);
      if (v == nullptr) return nullptr;
    } else {
      return nullptr;
    }
  }
  return v;
}

/// Escape `name`, parse the result back, and require a byte-exact
/// round trip into valid JSON. Returns failures.
int check_roundtrip(const char* label, const std::string& name,
                    const std::string& expect_parsed) {
  const std::string escaped = prlc::json::escape(name);
  prlc::json::Value parsed;
  try {
    parsed = prlc::json::Value::parse(escaped);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prlc_json_check: self-test %s: escape() output failed to "
                         "parse: %s\n",
                 label, e.what());
    return 1;
  }
  if (!parsed.is_string() || parsed.as_string() != expect_parsed) {
    std::fprintf(stderr, "prlc_json_check: self-test %s: round trip mismatch\n", label);
    return 1;
  }
  // The escaped form must also survive as an object key in a document.
  prlc::json::Value doc = prlc::json::Value::object();
  doc.set(name, 1.0);
  try {
    const prlc::json::Value reparsed = prlc::json::Value::parse(doc.dump(-1));
    if (reparsed.find(expect_parsed) == nullptr) {
      std::fprintf(stderr, "prlc_json_check: self-test %s: key lost in document\n", label);
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "prlc_json_check: self-test %s: document failed to parse: %s\n",
                 label, e.what());
    return 1;
  }
  return 0;
}

/// Hostile metric/event names through the writer and back. The escaping
/// contract: control characters escape to \uXXXX, invalid UTF-8 bytes are
/// replaced with U+FFFD, and everything the writer emits reparses.
int self_test() {
  int failures = 0;
  const std::string replacement = "\xEF\xBF\xBD";  // U+FFFD
  failures += check_roundtrip("control-chars", std::string("a\x01\x02\x1f\n\t b"),
                              std::string("a\x01\x02\x1f\n\t b"));
  failures += check_roundtrip("quotes-backslash", "he said \"x\\y\"", "he said \"x\\y\"");
  failures += check_roundtrip("nul-byte", std::string("a\0b", 3), std::string("a\0b", 3));
  failures += check_roundtrip("valid-utf8", "lat\xC3\xADn \xE2\x82\xAC \xF0\x9F\x94\xA7",
                              "lat\xC3\xADn \xE2\x82\xAC \xF0\x9F\x94\xA7");
  failures += check_roundtrip("stray-continuation", "a\x80z", "a" + replacement + "z");
  failures += check_roundtrip("truncated-2byte", "a\xC3", "a" + replacement);
  failures += check_roundtrip("truncated-3byte", "a\xE2\x82z", "a" + replacement +
                                                                   replacement + "z");
  failures += check_roundtrip("overlong-slash", "a\xC0\xAFz",
                              "a" + replacement + replacement + "z");
  failures += check_roundtrip("utf8-surrogate", "a\xED\xA0\x80z",
                              "a" + replacement + replacement + replacement + "z");
  failures += check_roundtrip("f4-out-of-range", "a\xF4\x90\x80\x80z",
                              "a" + replacement + replacement + replacement +
                                  replacement + "z");
  // Raw control characters must be *rejected* by the strict parser: the
  // writer always escapes them, so a raw one means a corrupt document.
  try {
    prlc::json::Value::parse("\"a\x01b\"");
    std::fprintf(stderr,
                 "prlc_json_check: self-test raw-control: parser accepted a raw "
                 "control character\n");
    ++failures;
  } catch (const std::exception&) {
  }
  if (failures == 0) std::printf("prlc_json_check: self-test ok\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> requirements;
  std::vector<std::string> files;
  bool jsonl = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--self-test") {
      return self_test();
    } else if (arg == "--jsonl") {
      jsonl = true;
    } else if (arg == "--require") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "prlc_json_check: --require needs a value\n");
        return 1;
      }
      for (auto& r : split(argv[++i], ',')) requirements.push_back(std::move(r));
    } else if (arg.starts_with("--require=")) {
      for (auto& r : split(arg.substr(10), ',')) requirements.push_back(std::move(r));
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: prlc_json_check [--jsonl] [--require path1,path2] file.json "
                 "[...]\n       prlc_json_check --self-test\n");
    return 1;
  }

  int failures = 0;
  for (const std::string& file : files) {
    std::string text;
    try {
      text = prlc::json::read_file(file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "prlc_json_check: %s: %s\n", file.c_str(), e.what());
      ++failures;
      continue;
    }
    int file_failures = 0;
    if (jsonl) {
      // JSON Lines: each nonempty line is its own document; --require
      // paths must resolve in every line.
      std::size_t line_no = 0;
      std::size_t checked = 0;
      std::size_t start = 0;
      while (start <= text.size()) {
        const std::size_t pos = text.find('\n', start);
        const std::string_view line(text.data() + start,
                                    (pos == std::string::npos ? text.size() : pos) - start);
        start = pos == std::string::npos ? text.size() + 1 : pos + 1;
        ++line_no;
        if (line.empty()) continue;
        prlc::json::Value root;
        try {
          root = prlc::json::Value::parse(line);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "prlc_json_check: %s:%zu: %s\n", file.c_str(), line_no,
                       e.what());
          ++file_failures;
          continue;
        }
        ++checked;
        for (const std::string& req : requirements) {
          if (resolve(root, req) == nullptr) {
            std::fprintf(stderr, "prlc_json_check: %s:%zu: missing required path '%s'\n",
                         file.c_str(), line_no, req.c_str());
            ++file_failures;
          }
        }
      }
      if (file_failures == 0) {
        std::printf("prlc_json_check: %s ok (%zu line%s, %zu requirement%s)\n",
                    file.c_str(), checked, checked == 1 ? "" : "s", requirements.size(),
                    requirements.size() == 1 ? "" : "s");
      }
    } else {
      prlc::json::Value root;
      try {
        root = prlc::json::Value::parse(text);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "prlc_json_check: %s: %s\n", file.c_str(), e.what());
        ++failures;
        continue;
      }
      for (const std::string& req : requirements) {
        if (resolve(root, req) == nullptr) {
          std::fprintf(stderr, "prlc_json_check: %s: missing required path '%s'\n",
                       file.c_str(), req.c_str());
          ++file_failures;
        }
      }
      if (file_failures == 0) {
        std::printf("prlc_json_check: %s ok (%zu requirement%s)\n", file.c_str(),
                    requirements.size(), requirements.size() == 1 ? "" : "s");
      }
    }
    failures += file_failures;
  }
  return failures == 0 ? 0 : 1;
}
