// prlc_json_check — validate machine-readable outputs in the smoke tests.
//
// Usage: prlc_json_check [--require p1,p2,...] file.json [more.json ...]
//
// Each file must parse as strict JSON; each --require entry is a
// '/'-separated path that must resolve inside every file ('/' rather than
// '.' because metric names themselves contain dots, e.g.
// "counters/decoder.rows_innovative"). A numeric component indexes an
// array. Exit 0 when everything holds, 1 with a diagnostic otherwise.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

const prlc::json::Value* resolve(const prlc::json::Value& root, const std::string& path) {
  const prlc::json::Value* v = &root;
  for (const std::string& part : split(path, '/')) {
    if (v->is_array()) {
      char* end = nullptr;
      const unsigned long idx = std::strtoul(part.c_str(), &end, 10);
      if (end != part.c_str() + part.size() || idx >= v->size()) return nullptr;
      v = &v->at(static_cast<std::size_t>(idx));
    } else if (v->is_object()) {
      v = v->find(part);
      if (v == nullptr) return nullptr;
    } else {
      return nullptr;
    }
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> requirements;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--require") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "prlc_json_check: --require needs a value\n");
        return 1;
      }
      for (auto& r : split(argv[++i], ',')) requirements.push_back(std::move(r));
    } else if (arg.starts_with("--require=")) {
      for (auto& r : split(arg.substr(10), ',')) requirements.push_back(std::move(r));
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: prlc_json_check [--require path1,path2] file.json [...]\n");
    return 1;
  }

  int failures = 0;
  for (const std::string& file : files) {
    prlc::json::Value root;
    try {
      root = prlc::json::Value::parse(prlc::json::read_file(file));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "prlc_json_check: %s: %s\n", file.c_str(), e.what());
      ++failures;
      continue;
    }
    int file_failures = 0;
    for (const std::string& req : requirements) {
      if (resolve(root, req) == nullptr) {
        std::fprintf(stderr, "prlc_json_check: %s: missing required path '%s'\n",
                     file.c_str(), req.c_str());
        ++file_failures;
      }
    }
    failures += file_failures;
    if (file_failures == 0) {
      std::printf("prlc_json_check: %s ok (%zu requirement%s)\n", file.c_str(),
                  requirements.size(), requirements.size() == 1 ? "" : "s");
    }
  }
  return failures == 0 ? 0 : 1;
}
